//! The concurrent reconciliation service.
//!
//! [`ReconciliationService`] owns the base probabilistic network behind
//! the copy-on-write snapshot layer and drives rounds of a *seeded
//! virtual schedule*:
//!
//! 1. the [`Dispatcher`] leases up to
//!    `⌊W/k⌋` distinct uncertain candidates, each to `k` distinct workers
//!    (disjoint across the round's leases, rotated across rounds);
//! 2. worker evaluations run through the batched what-if
//!    ([`smn_core::ProbabilisticNetwork::what_if_batch`]) — each worker
//!    answers from its error-rate profile, and the exact uncertainty each
//!    distinct verdict would produce is measured against the base's
//!    copy-on-write snapshots (at most two branch queries per lease,
//!    shared by all its votes); the per-shard query groups fan out across
//!    the configured [`Scheduler`] — the persistent work-stealing pool of
//!    [`smn_core::pool`] by default;
//! 3. votes are reassembled by `(lease, vote)` slot and
//!    [aggregated](mod@crate::aggregate) in lease order; each aggregated
//!    assertion commits to the base (inconsistent approvals fall back to
//!    disapproval, exactly like [`smn_core::reconcile`](mod@smn_core::reconcile)).
//!
//! Because every worker answer is a pure function, every branch entropy
//! is a pure function of the same base snapshot and its query, and
//! commits happen in lease order, the scheduler and the number of OS
//! threads only change *who computes what* — never the result. Two runs
//! with the same config are byte-identical at any thread count and under
//! any scheduler, which the `determinism` integration suite asserts at
//! 1, 4 and 8 threads and across pool/scoped/inline scheduling.

use crate::aggregate::{aggregate, Aggregation, Verdict, Vote};
use crate::dispatch::{Dispatcher, Lease};
use crate::model::ServeModel;
use crate::worker::{WorkerPool, WorkerStats};
use serde::Serialize;
use smn_constraints::BitSet;
use smn_core::feedback::Assertion;
use smn_core::persist::NetworkEvent;
use smn_core::shard::ShardingConfig;
use smn_core::{
    MatchingNetwork, PrecisionRecall, ProbabilisticNetwork, ReconciliationGoal, SamplerConfig,
    StepOutcome, TracePoint,
};
use smn_schema::{CandidateId, Correspondence};
use smn_storage::{DurableStore, StorageError};
use std::collections::BTreeMap;
use std::path::Path;

/// How a round's what-if branch evaluations are scheduled across
/// threads. Every variant evaluates the same per-shard
/// [`what_if_batch`](smn_core::ProbabilisticNetwork::what_if_batch)
/// queries, and each query's value is a pure function of the base and
/// the query — so the scheduler never affects results, only wall-clock.
/// The `determinism` integration suite pins pool ≡ scoped ≡ inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The persistent work-stealing pool of [`smn_core::pool`] — no
    /// thread spawns per round (default).
    #[default]
    Pool,
    /// One-shot `std::thread::scope` threads per round — the pre-pool
    /// behaviour, kept as the differential reference.
    Scoped,
    /// The submitting thread evaluates everything sequentially.
    Inline,
}

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Sampler parameters of the base network.
    pub sampler: SamplerConfig,
    /// Sample representation of the base network; the component-sharded
    /// default is what makes concurrent copy-on-write commits local.
    pub sharding: ShardingConfig,
    /// Votes per leased candidate (`k`), clamped to the worker count.
    pub redundancy: usize,
    /// How votes reduce to one assertion.
    pub aggregation: Aggregation,
    /// OS threads for worker evaluation; `0` uses the machine's available
    /// parallelism, `1` forces sequential evaluation. Never affects
    /// results, only wall-clock. (Under [`Scheduler::Pool`] the pool's
    /// own size bounds the actual parallelism.)
    pub threads: usize,
    /// How branch evaluations are scheduled; never affects results.
    pub scheduler: Scheduler,
    /// Seed of the virtual schedule (dispatcher tie-breaking) and the
    /// worker noise.
    pub seed: u64,
    /// When the service stops: a commit budget, an entropy threshold, or
    /// complete validation of every candidate.
    pub goal: ReconciliationGoal,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            sampler: SamplerConfig::default(),
            sharding: ShardingConfig::default(),
            redundancy: 3,
            aggregation: Aggregation::Majority,
            threads: 0,
            scheduler: Scheduler::default(),
            seed: 0xC0FFEE,
            goal: ReconciliationGoal::Complete,
        }
    }
}

/// One committed (aggregated) assertion — the service-level analogue of a
/// [`TracePoint`], enriched with the crowd evidence behind it.
#[derive(Debug, Clone, Serialize)]
pub struct CommitRecord {
    /// 1-based commit count.
    pub step: usize,
    /// Round the commit happened in.
    pub round: usize,
    /// The asserted candidate id.
    pub candidate: u32,
    /// The shard (conflict component) the commit copy-on-wrote.
    pub shard: usize,
    /// The committed verdict (after any inconsistency fallback).
    pub approved: bool,
    /// `integrated`, `flipped` or `skipped` (see [`StepOutcome`]).
    pub outcome: String,
    /// The dispatcher's information-gain estimate behind the lease
    /// (`None` for fallback leases of certain candidates) — logged, not
    /// recomputed.
    pub score: Option<f64>,
    /// Raw approving votes.
    pub votes_for: usize,
    /// Raw disapproving votes.
    pub votes_against: usize,
    /// The lowest exact what-if entropy any voter measured on its fork.
    pub min_expected_entropy: f64,
    /// Network uncertainty after the commit.
    pub entropy_after: f64,
    /// User effort after the commit.
    pub effort_after: f64,
}

/// Per-round aggregates for effort/quality curves.
#[derive(Debug, Clone, Serialize)]
pub struct RoundStats {
    /// 0-based round index.
    pub round: usize,
    /// Leases dispatched this round.
    pub leases: usize,
    /// Assertions committed this round.
    pub commits: usize,
    /// Network uncertainty after the round.
    pub entropy: f64,
    /// User effort after the round.
    pub effort: f64,
    /// Precision of the probability-majority matching `{c : p_c > ½}`
    /// against the verified matching.
    pub precision: f64,
    /// Recall of the same matching.
    pub recall: f64,
}

/// The machine-readable outcome of a service run. Deliberately carries no
/// thread count and no wall-clock: everything in here is a deterministic
/// function of the configuration seeds, so identically-configured runs
/// serialize byte-identically at any parallelism.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceReport {
    /// Workers in the pool.
    pub workers: usize,
    /// Effective redundancy `k`.
    pub redundancy: usize,
    /// Aggregation scheme label.
    pub aggregation: String,
    /// Per-worker configured error rates.
    pub worker_error_rates: Vec<f64>,
    /// Total worker answers collected.
    pub questions_asked: u64,
    /// Committed assertions.
    pub commits: Vec<CommitRecord>,
    /// Per-round quality/effort curve.
    pub rounds: Vec<RoundStats>,
    /// Per-worker tallies (answers, errors vs ground truth).
    pub worker_stats: Vec<WorkerStats>,
    /// Final network uncertainty.
    pub final_entropy: f64,
    /// Final user effort.
    pub final_effort: f64,
    /// Final precision of the probability-majority matching.
    pub final_precision: f64,
    /// Final recall of the probability-majority matching.
    pub final_recall: f64,
    /// The latched storage fault of the attached durable store, if any —
    /// surfaced in the report (not only behind the
    /// [`durability_error`](ReconciliationService::durability_error)
    /// getter) so saved JSON cannot silently drop a journaling failure.
    /// `None` while journaling is healthy or detached.
    pub durability_error: Option<String>,
}

/// Why durability could not be attached to the service.
#[derive(Debug)]
pub enum DurabilityError {
    /// The serving model is not an in-process
    /// [`ProbabilisticNetwork`] (e.g. a distributed coordinator):
    /// snapshot publication needs the concrete network, so remote-backed
    /// services journal at their shard servers instead.
    RemoteModel,
    /// Opening the durable store failed.
    Storage(StorageError),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RemoteModel => {
                write!(f, "durability requires an in-process network model")
            }
            Self::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<StorageError> for DurabilityError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// The attached durability state: a [`DurableStore`] the service journals
/// committed assertions into, a publication cadence, and the first storage
/// error if one ever occurred (after which journaling stops — the service
/// itself never fails or panics on storage trouble).
struct Durability {
    store: DurableStore,
    snapshot_every: usize,
    error: Option<StorageError>,
}

/// The concurrent multi-worker reconciliation service, generic over the
/// [`ServeModel`] it drives (the in-process
/// [`ProbabilisticNetwork`] by default; a distributed coordinator slots
/// in through [`with_model`](Self::with_model) without changing the
/// round loop, the lease schedule or the report format).
pub struct ReconciliationService<M: ServeModel = ProbabilisticNetwork> {
    base: M,
    pool: WorkerPool,
    dispatcher: Dispatcher,
    config: ServiceConfig,
    truth: Vec<Correspondence>,
    history: Vec<TracePoint>,
    commits: Vec<CommitRecord>,
    rounds: Vec<RoundStats>,
    durability: Option<Durability>,
}

impl ReconciliationService {
    /// Builds the service: the base probabilistic network (initial
    /// sampling under `config.sampler`/`config.sharding`), a worker pool
    /// with the given per-worker error rates answering against `truth`,
    /// and the seeded dispatcher.
    pub fn new(
        network: MatchingNetwork,
        truth: Vec<Correspondence>,
        error_rates: impl IntoIterator<Item = f64>,
        config: ServiceConfig,
    ) -> Self {
        let base = ProbabilisticNetwork::new_sharded(network, config.sampler, config.sharding);
        Self::with_model(base, truth, error_rates, config)
    }
}

impl<M: ServeModel> ReconciliationService<M> {
    /// Builds the service around an already-constructed model — the
    /// generic entry point behind [`new`](ReconciliationService::new);
    /// `config.sampler`/`config.sharding` are kept for the record but
    /// the model arrives sampled.
    pub fn with_model(
        base: M,
        truth: Vec<Correspondence>,
        error_rates: impl IntoIterator<Item = f64>,
        config: ServiceConfig,
    ) -> Self {
        // the worker-noise seed is derived, not shared: dispatcher
        // tie-breaks and worker coins must be independent streams
        let pool = WorkerPool::new(
            error_rates,
            truth.iter().copied(),
            config.seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(1),
        );
        let dispatcher = Dispatcher::new(config.seed);
        Self {
            base,
            pool,
            dispatcher,
            config,
            truth,
            history: Vec::new(),
            commits: Vec::new(),
            rounds: Vec::new(),
            durability: None,
        }
    }

    /// Attaches a durable store under `dir`: the current base network and
    /// assertion history are snapshotted immediately, every later commit
    /// is appended to a write-ahead log as it happens, the log is fsynced
    /// between rounds, and every `snapshot_every` rounds a fresh snapshot
    /// is published and the log rotated. After a crash,
    /// [`DurableStore::recover`] on the same directory reproduces the
    /// base network exactly.
    ///
    /// Storage errors after attachment never surface as panics or run
    /// failures: the first one is latched (see
    /// [`durability_error`](Self::durability_error)) and journaling
    /// stops.
    ///
    /// Only in-process models can attach: snapshot publication needs the
    /// concrete [`ProbabilisticNetwork`], so a remote-backed model (one
    /// whose [`ServeModel::as_local`] is `None`) gets
    /// [`DurabilityError::RemoteModel`] instead of silently journaling
    /// nothing.
    pub fn attach_durability(
        &mut self,
        dir: impl AsRef<Path>,
        snapshot_every: usize,
    ) -> Result<(), DurabilityError> {
        let Some(local) = self.base.as_local() else {
            return Err(DurabilityError::RemoteModel);
        };
        let assertions: Vec<Assertion> = self
            .history
            .iter()
            .map(|t| Assertion { candidate: t.candidate, approved: t.approved })
            .collect();
        let store = DurableStore::open(dir.as_ref(), local, &assertions, assertions.len() as u64)?;
        self.durability =
            Some(Durability { store, snapshot_every: snapshot_every.max(1), error: None });
        Ok(())
    }

    /// The first storage error the attached durable store hit, if any.
    /// `None` while journaling is healthy (or detached).
    pub fn durability_error(&self) -> Option<&StorageError> {
        self.durability.as_ref().and_then(|d| d.error.as_ref())
    }

    /// The committed assertion history in `smn-core` terms — what a
    /// recovery of the attached store replays over its snapshot.
    pub fn assertions(&self) -> Vec<Assertion> {
        self.history
            .iter()
            .map(|t| Assertion { candidate: t.candidate, approved: t.approved })
            .collect()
    }

    /// Journals one applied event, latching the first failure.
    fn journal(&mut self, event: NetworkEvent) {
        let Some(d) = &mut self.durability else { return };
        if d.error.is_some() {
            return;
        }
        if let Err(e) = d.store.append(&event) {
            d.error = Some(e);
        }
    }

    /// End-of-round durability work: fsync the log, and on the publication
    /// cadence snapshot the base and rotate the log.
    fn checkpoint_round(&mut self) {
        let Some(d) = &mut self.durability else { return };
        if d.error.is_some() {
            return;
        }
        // attachment is gated on `as_local`, so a publishing round always
        // finds the concrete network; the defensive fallback still fsyncs
        let result = match (self.rounds.len() % d.snapshot_every == 0, self.base.as_local()) {
            (true, Some(local)) => {
                let assertions: Vec<Assertion> = self
                    .history
                    .iter()
                    .map(|t| Assertion { candidate: t.candidate, approved: t.approved })
                    .collect();
                d.store.publish(local, &assertions).map(|_| ())
            }
            _ => d.store.sync(),
        };
        if let Err(e) = result {
            d.error = Some(e);
        }
    }

    /// The base model (the probabilistic network in the default
    /// in-process configuration).
    pub fn base(&self) -> &M {
        &self.base
    }

    /// Consumes the service and returns its model — how a caller gets a
    /// remote-backed model back for an orderly cluster shutdown after
    /// the run (dropping it instead just closes the links).
    pub fn into_model(self) -> M {
        self.base
    }

    /// The committed assertions as a [`TracePoint`] sequence — directly
    /// comparable to a sequential [`smn_core::Session::run`] trace.
    pub fn history(&self) -> &[TracePoint] {
        &self.history
    }

    /// The worker pool (profiles and tallies).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Runs rounds until the configured goal holds and returns the report.
    pub fn run(&mut self) -> ServiceReport {
        let workers = self.pool.len();
        let k = self.config.redundancy.clamp(1, workers);
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.config.threads
        };
        let mut round = self.rounds.len();
        loop {
            match self.config.goal {
                ReconciliationGoal::Budget(b) if self.history.len() >= b => break,
                ReconciliationGoal::EntropyBelow(h) if self.base.entropy() < h => break,
                _ => {}
            }
            let mut batch = (workers / k).max(1);
            if let ReconciliationGoal::Budget(b) = self.config.goal {
                batch = batch.min(b - self.history.len());
            }
            let leases = self.dispatcher.lease_round(&self.base, batch, workers, k, round);
            if leases.is_empty() {
                break; // every candidate validated
            }
            let votes =
                collect_votes(&self.base, &self.pool, &leases, threads, self.config.scheduler);
            let committed = self.commit_round(round, &leases, &votes);
            let quality = self.matching_quality();
            self.rounds.push(RoundStats {
                round,
                leases: leases.len(),
                commits: committed,
                entropy: self.base.entropy(),
                effort: self.base.effort(),
                precision: quality.precision,
                recall: quality.recall,
            });
            self.checkpoint_round();
            round += 1;
        }
        self.report()
    }

    /// Integrates one round's aggregated verdicts in lease order. Returns
    /// how many assertions were committed (vs skipped).
    fn commit_round(&mut self, round: usize, leases: &[Lease], votes: &[Vec<Vote>]) -> usize {
        let mut committed = 0usize;
        for (lease, votes) in leases.iter().zip(votes) {
            for v in votes {
                self.pool.record(v.worker, lease.correspondence, v.approved);
            }
            let verdict: Verdict = aggregate(self.config.aggregation, votes, self.pool.profiles());
            let wanted = Assertion { candidate: lease.candidate, approved: verdict.approved };
            let (approved, outcome) = match self.base.assert_candidate(wanted) {
                Ok(()) => (verdict.approved, StepOutcome::Integrated),
                Err(_) => {
                    // an approval that conflicts with standing approvals is
                    // integrated as a disapproval, like the sequential loop
                    let fallback = Assertion { candidate: lease.candidate, approved: false };
                    match self.base.assert_candidate(fallback) {
                        Ok(()) => (false, StepOutcome::Flipped),
                        Err(_) => (verdict.approved, StepOutcome::Skipped),
                    }
                }
            };
            if outcome != StepOutcome::Skipped {
                committed += 1;
                self.journal(NetworkEvent::Assert { candidate: lease.candidate, approved });
                self.history.push(TracePoint {
                    step: self.history.len() + 1,
                    candidate: lease.candidate,
                    approved,
                    outcome,
                    effort: self.base.effort(),
                    entropy: self.base.entropy(),
                    normalized_entropy: self.base.normalized_entropy(),
                });
            }
            let min_expected =
                votes.iter().map(|v| v.expected_entropy).fold(f64::INFINITY, f64::min);
            self.commits.push(CommitRecord {
                step: self.commits.len() + 1,
                round,
                candidate: lease.candidate.0,
                shard: lease.shard,
                approved,
                outcome: match outcome {
                    StepOutcome::Integrated => "integrated".into(),
                    StepOutcome::Flipped => "flipped".into(),
                    StepOutcome::Skipped => "skipped".into(),
                },
                score: lease.score,
                votes_for: verdict.votes_for,
                votes_against: verdict.votes_against,
                min_expected_entropy: min_expected,
                entropy_after: self.base.entropy(),
                effort_after: self.base.effort(),
            });
        }
        committed
    }

    /// Precision/recall of the probability-majority matching
    /// `{c : p_c > ½}` against the verified matching.
    fn matching_quality(&self) -> PrecisionRecall {
        let n = self.base.network().candidate_count();
        let matching = BitSet::from_ids(
            n,
            (0..n).map(CandidateId::from_index).filter(|&c| self.base.probability(c) > 0.5),
        );
        PrecisionRecall::of_instance(self.base.network(), &matching, self.truth.iter().copied())
    }

    /// Assembles the (deterministic) report of everything so far.
    pub fn report(&self) -> ServiceReport {
        let quality = self.matching_quality();
        ServiceReport {
            workers: self.pool.len(),
            redundancy: self.config.redundancy.clamp(1, self.pool.len()),
            aggregation: self.config.aggregation.label().to_string(),
            worker_error_rates: self.pool.profiles().iter().map(|p| p.error_rate).collect(),
            questions_asked: self.pool.stats().iter().map(|s| s.answered).sum(),
            commits: self.commits.clone(),
            rounds: self.rounds.clone(),
            worker_stats: self.pool.stats().to_vec(),
            final_entropy: self.base.entropy(),
            final_effort: self.base.effort(),
            final_precision: quality.precision,
            final_recall: quality.recall,
            durability_error: self.durability_error().map(|e| e.to_string()),
        }
    }
}

/// Evaluates one round's leases: worker answers inline (pure-function
/// lookups), branch entropies through the batched what-if.
///
/// The expensive part — the exact uncertainty a verdict would produce —
/// depends only on `(lease, verdict)`, so each lease needs at most *two*
/// branch queries no matter the redundancy. The distinct queries go
/// through [`ProbabilisticNetwork::what_if_batch`]: each is priced at
/// one copy-on-write shard fork plus the per-shard entropy
/// decomposition, never a network-wide fork. Grouped by owning shard —
/// the dispatcher leases distinct shards, so that is also the natural
/// unit of parallelism — the groups fan out under the configured
/// [`Scheduler`]. Every query's value is a pure function of the base and
/// the query, so neither the grouping nor the scheduler changes the
/// outcome: votes assembled by slot are identical at any thread count.
fn collect_votes<M: ServeModel>(
    base: &M,
    pool: &WorkerPool,
    leases: &[Lease],
    threads: usize,
    scheduler: Scheduler,
) -> Vec<Vec<Vote>> {
    let answers: Vec<Vec<bool>> = leases
        .iter()
        .map(|l| l.workers.iter().map(|&w| pool.answer(w, l.correspondence)).collect())
        .collect();
    // distinct (lease, verdict) branches that need a what-if evaluation
    let jobs: Vec<(usize, bool)> = (0..leases.len())
        .flat_map(|li| {
            let answers = &answers;
            [true, false]
                .into_iter()
                .filter(move |&v| answers[li].iter().any(|&a| a == v))
                .map(move |v| (li, v))
        })
        .collect();
    let queries: Vec<(CandidateId, bool)> =
        jobs.iter().map(|&(li, v)| (leases[li].candidate, v)).collect();
    let entropies = evaluate_branches(base, &queries, threads, scheduler);
    // branch_entropy[li][approved as usize]
    let mut branch_entropy: Vec<[f64; 2]> = vec![[f64::NAN; 2]; leases.len()];
    for (&(li, v), h) in jobs.iter().zip(entropies) {
        branch_entropy[li][usize::from(v)] = h;
    }
    leases
        .iter()
        .enumerate()
        .map(|(li, l)| {
            l.workers
                .iter()
                .zip(&answers[li])
                .map(|(&worker, &approved)| Vote {
                    worker,
                    approved,
                    expected_entropy: branch_entropy[li][usize::from(approved)],
                })
                .collect()
        })
        .collect()
}

/// Runs the branch queries through
/// [`ProbabilisticNetwork::what_if_batch`], fanned out one task per
/// owning shard under the chosen scheduler. Values align with `queries`.
///
/// Any partition of the batch yields the same values — `what_if_batch`
/// prices a query from the base's entropy, its shard's standing entropy
/// and the hypothetical shard entropy, all pure functions of the base —
/// so the sequential whole-batch call is the differential reference for
/// both parallel paths.
fn evaluate_branches<M: ServeModel>(
    base: &M,
    queries: &[(CandidateId, bool)],
    threads: usize,
    scheduler: Scheduler,
) -> Vec<f64> {
    let workers = threads.min(queries.len()).max(1);
    if workers <= 1 || scheduler == Scheduler::Inline {
        return base.what_if_batch(queries);
    }
    let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (pos, &(c, _)) in queries.iter().enumerate() {
        by_shard.entry(base.shard_of(c)).or_default().push(pos);
    }
    let groups: Vec<Vec<usize>> = by_shard.into_values().collect();
    let run_group = |positions: &Vec<usize>| -> Vec<f64> {
        let group: Vec<(CandidateId, bool)> = positions.iter().map(|&p| queries[p]).collect();
        base.what_if_batch(&group)
    };
    let run_group = &run_group;
    let tasks: Vec<smn_core::pool::Task<'_, Vec<f64>>> = groups
        .iter()
        .map(|g| Box::new(move || run_group(g)) as smn_core::pool::Task<'_, _>)
        .collect();
    let per_group = match scheduler {
        Scheduler::Pool => smn_core::pool::global().run(tasks),
        Scheduler::Scoped => smn_core::pool::run_scoped(tasks),
        Scheduler::Inline => unreachable!("inline handled above"),
    };
    let mut out = vec![0.0; queries.len()];
    for (positions, values) in groups.iter().zip(per_group) {
        for (&p, v) in positions.iter().zip(values) {
            out[p] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_testkit::{fig1_network, fig1_truth, tiny_sampler};

    fn config(goal: ReconciliationGoal) -> ServiceConfig {
        ServiceConfig {
            sampler: tiny_sampler(5),
            sharding: ShardingConfig::default(),
            redundancy: 1,
            aggregation: Aggregation::Majority,
            threads: 2,
            scheduler: Scheduler::default(),
            seed: 9,
            goal,
        }
    }

    fn perfect_service(workers: usize, goal: ReconciliationGoal) -> ReconciliationService {
        ReconciliationService::new(fig1_network(), fig1_truth(), vec![0.0; workers], config(goal))
    }

    #[test]
    fn perfect_crowd_reconciles_fig1_completely() {
        let mut svc = perfect_service(3, ReconciliationGoal::Complete);
        let report = svc.run();
        assert_eq!(report.final_entropy, 0.0);
        assert_eq!(report.final_precision, 1.0);
        assert_eq!(report.final_recall, 1.0);
        assert_eq!(svc.base().effort(), 1.0, "Complete validates every candidate");
        assert!(!report.rounds.is_empty());
        assert_eq!(report.workers, 3);
    }

    #[test]
    fn budget_goal_caps_commits() {
        let mut svc = perfect_service(4, ReconciliationGoal::Budget(2));
        let report = svc.run();
        assert_eq!(svc.history().len(), 2);
        assert_eq!(report.commits.len(), 2);
        assert!((report.final_effort - 0.4).abs() < 1e-12);
    }

    #[test]
    fn commits_carry_the_lease_score() {
        let mut svc = perfect_service(1, ReconciliationGoal::Budget(1));
        let report = svc.run();
        let c = &report.commits[0];
        assert!(c.score.expect("first lease has uncertain candidates") > 0.0);
        assert!(c.min_expected_entropy <= svc.base().entropy() + 1e-12 + 5.0);
        assert_eq!(c.outcome, "integrated");
    }

    #[test]
    fn noisy_majority_still_terminates_and_reports() {
        let mut svc = ReconciliationService::new(
            fig1_network(),
            fig1_truth(),
            vec![0.3, 0.3, 0.3],
            ServiceConfig {
                redundancy: 3,
                aggregation: Aggregation::QualityWeighted,
                ..config(ReconciliationGoal::Complete)
            },
        );
        let report = svc.run();
        assert_eq!(report.redundancy, 3);
        assert_eq!(report.aggregation, "quality-weighted");
        assert_eq!(svc.base().effort(), 1.0);
        assert_eq!(
            report.questions_asked,
            report.commits.len() as u64 * 3,
            "every commit aggregates k = 3 votes"
        );
    }
}
