//! The simulated crowd: workers with individual error rates.
//!
//! Each worker is the service-layer analogue of
//! [`smn_core::NoisyOracle`], with one deliberate difference: instead of
//! memoizing RNG draws in query order, a worker's verdict on a
//! correspondence is a *pure function* of `(pool seed, worker id,
//! correspondence)` (a splitmix64 hash thresholded against the worker's
//! error rate). The answers are exactly as consistent as a memoized
//! oracle's — the same worker asked twice answers the same — but they are
//! also *exchangeable*: no matter which thread asks first, in which round,
//! at which redundancy, the answer is the same. That property is what
//! lets the [`ReconciliationService`](crate::service::ReconciliationService)
//! promise byte-identical runs at any thread count.

use serde::Serialize;
use smn_schema::Correspondence;
use std::collections::HashSet;

/// One worker's quality profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkerProfile {
    /// Probability that the worker answers against the ground truth.
    /// Quality-weighted aggregation treats this as the worker's calibrated
    /// quality (log-odds weight).
    pub error_rate: f64,
}

/// Per-worker answer tallies, filled in as the service commits rounds.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct WorkerStats {
    /// Questions this worker answered.
    pub answered: u64,
    /// Answers that contradicted the ground truth.
    pub errors: u64,
}

/// A pool of simulated workers answering against a shared ground truth.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    profiles: Vec<WorkerProfile>,
    truth: HashSet<Correspondence>,
    seed: u64,
    stats: Vec<WorkerStats>,
}

impl WorkerPool {
    /// Creates the pool from per-worker error rates and the verified
    /// matching the simulation answers against.
    ///
    /// # Panics
    /// Panics on an empty pool or an error rate outside `[0, 1]`.
    pub fn new(
        error_rates: impl IntoIterator<Item = f64>,
        truth: impl IntoIterator<Item = Correspondence>,
        seed: u64,
    ) -> Self {
        let profiles: Vec<WorkerProfile> =
            error_rates.into_iter().map(|error_rate| WorkerProfile { error_rate }).collect();
        assert!(!profiles.is_empty(), "worker pool needs at least one worker");
        for p in &profiles {
            assert!((0.0..=1.0).contains(&p.error_rate), "error rate out of range");
        }
        let stats = vec![WorkerStats::default(); profiles.len()];
        Self { profiles, truth: truth.into_iter().collect(), seed, stats }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The worker quality profiles.
    pub fn profiles(&self) -> &[WorkerProfile] {
        &self.profiles
    }

    /// Per-worker answer tallies.
    pub fn stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    /// Whether the verified matching contains `corr`.
    pub fn is_true(&self, corr: Correspondence) -> bool {
        self.truth.contains(&corr)
    }

    /// Worker `w`'s verdict on `corr`: the ground truth, flipped with
    /// probability `error_rate` by a deterministic per-`(worker, corr)`
    /// coin. Pure — no internal state advances; safe to call from any
    /// thread in any order.
    pub fn answer(&self, w: usize, corr: Correspondence) -> bool {
        let correct = self.truth.contains(&corr);
        let coin = unit_from_hash(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((w as u64) << 32)
                .wrapping_add(u64::from(corr.a().0))
                .wrapping_add(u64::from(corr.b().0).wrapping_mul(0x45D9_F3B3_3350_85D1)),
        );
        if coin < self.profiles[w].error_rate {
            !correct
        } else {
            correct
        }
    }

    /// Tallies one committed answer of worker `w` (called by the service
    /// during the single-threaded commit phase).
    pub fn record(&mut self, w: usize, corr: Correspondence, approved: bool) {
        self.stats[w].answered += 1;
        if approved != self.is_true(corr) {
            self.stats[w].errors += 1;
        }
    }
}

/// splitmix64 finalizer → uniform in `[0, 1)`.
fn unit_from_hash(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::AttributeId;

    fn corr(a: u32, b: u32) -> Correspondence {
        Correspondence::new(AttributeId(a), AttributeId(b))
    }

    fn truth() -> Vec<Correspondence> {
        (0..200).map(|i| corr(2 * i, 2 * i + 1)).collect()
    }

    #[test]
    fn perfect_worker_matches_ground_truth() {
        let pool = WorkerPool::new([0.0, 0.0], truth(), 7);
        for c in [corr(0, 1), corr(2, 3), corr(0, 3), corr(1, 2)] {
            assert_eq!(pool.answer(0, c), pool.is_true(c));
            assert_eq!(pool.answer(1, c), pool.is_true(c));
        }
    }

    #[test]
    fn full_noise_worker_inverts_ground_truth() {
        let pool = WorkerPool::new([1.0], truth(), 7);
        assert!(!pool.answer(0, corr(0, 1)));
        assert!(pool.answer(0, corr(1, 2)));
    }

    #[test]
    fn answers_are_stable_and_order_independent() {
        let pool = WorkerPool::new([0.5, 0.5, 0.5], truth(), 42);
        let forward: Vec<bool> = truth().iter().map(|&c| pool.answer(1, c)).collect();
        let backward: Vec<bool> = truth().iter().rev().map(|&c| pool.answer(1, c)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        for (i, &c) in truth().iter().enumerate() {
            assert_eq!(pool.answer(1, c), forward[i], "answers must be pure");
        }
    }

    #[test]
    fn workers_err_independently_at_plausible_rates() {
        let t = truth();
        let pool = WorkerPool::new([0.2, 0.2], t.iter().copied(), 11);
        let errs = |w: usize| t.iter().filter(|&&c| !pool.answer(w, c)).count();
        let (e0, e1) = (errs(0), errs(1));
        for e in [e0, e1] {
            let rate = e as f64 / t.len() as f64;
            assert!((rate - 0.2).abs() < 0.09, "observed error rate {rate}");
        }
        // distinct workers flip distinct questions
        let differ = t.iter().filter(|&&c| pool.answer(0, c) != pool.answer(1, c)).count();
        assert!(differ > 0, "independent workers cannot agree everywhere at 20% noise");
    }

    #[test]
    fn record_tallies_errors_against_truth() {
        let mut pool = WorkerPool::new([0.0], truth(), 1);
        pool.record(0, corr(0, 1), true);
        pool.record(0, corr(0, 1), false);
        assert_eq!(pool.stats()[0].answered, 2);
        assert_eq!(pool.stats()[0].errors, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_rejected() {
        let _ = WorkerPool::new(std::iter::empty::<f64>(), truth(), 1);
    }
}
