//! # smn-service
//!
//! A concurrent multi-worker reconciliation service over copy-on-write
//! network snapshots — the multi-user extension the paper's conclusion
//! points to ("our framework is extensible as the underlying probabilistic
//! model is independent of the number of users", §VII/§VIII), built on the
//! fork/commit ownership model of `smn-core`:
//!
//! * a [`WorkerPool`] of simulated crowd workers with
//!   per-worker error rates (the quality-aware-matching regime of
//!   PoWareMatch, Shraga & Gal 2021), whose noisy answers are a pure
//!   function of `(seed, worker, correspondence)` — consistent like a
//!   memoized oracle, yet independent of query order and scheduling;
//! * a shard-aware [`Dispatcher`] that leases
//!   distinct candidates to distinct workers per round, spreading
//!   concurrent questions across conflict components and replicating the
//!   information-gain strategy's selection (draw for draw) so a
//!   single-worker schedule replays a sequential [`smn_core::Session`]
//!   exactly;
//! * a redundancy-`k` [`aggregator`](mod@aggregate) — majority or
//!   quality-weighted (log-odds) voting — that commits one aggregated
//!   assertion per leased candidate back to the base snapshot;
//! * the [`ReconciliationService`] driving
//!   worker evaluations through the batched what-if
//!   ([`smn_core::ProbabilisticNetwork::what_if_batch`]) on the
//!   persistent work-stealing pool of [`smn_core::pool`] (a
//!   [`Scheduler`] knob keeps the scoped-thread and inline paths as
//!   differential references): every vote reports the exact what-if
//!   entropy of its verdict, priced at one copy-on-write shard fork (one
//!   evaluation per distinct verdict per lease — at most two however
//!   large the crowd), and results are committed in lease order under a
//!   seeded virtual schedule — so a run is **byte-reproducible at any
//!   thread count and under any scheduler**, and precision/recall
//!   against the verified matching is tracked per round (in the spirit
//!   of Validation of Matching, Le et al. 2014);
//! * optional **durability**
//!   ([`attach_durability`](ReconciliationService::attach_durability)):
//!   every committed assertion is journaled to an `smn-storage`
//!   write-ahead log as it commits, the log is fsynced between rounds,
//!   and snapshots are published (with log rotation) on a configurable
//!   round cadence — after a crash, [`smn_storage::DurableStore::recover`]
//!   reproduces the base network bit for bit. Storage failures are
//!   latched, never panicked on.
//! * a **request-driven serving layer** ([`ServingCore`]) inverting the
//!   round loop: typed [`ServiceEvent`]s flow through a bounded
//!   [`IngressQueue`] with typed backpressure and gapless logical-clock
//!   stamping; a [`SessionManager`] multiplexes thousands of concurrent
//!   sessions over cheap copy-on-write forks of the published snapshot;
//!   decided assertions commit in `(shard, clock)` order through
//!   per-shard commit lanes on the worker pool's high-priority lane,
//!   with WAL-append-at-commit per lane; evolution takes a brief
//!   exclusive epoch and snapshots publish by `Arc` swap. The accepted
//!   event log replays byte for byte ([`ServingCore::replay`]) — see
//!   `docs/SERVING.md`.

pub mod aggregate;
pub mod dispatch;
pub mod event;
pub mod model;
pub mod serve;
pub mod service;
pub mod session;
pub mod worker;

pub use aggregate::{aggregate, Aggregation, Verdict, Vote};
pub use dispatch::{Dispatcher, Lease};
pub use event::{IngressError, IngressQueue, ServiceEvent, StampedEvent};
pub use model::ServeModel;
pub use serve::{
    LatencySummary, ReplayError, ServeCommit, ServeConfig, ServeConfigError, ServeReport,
    ServingCore,
};
pub use service::{
    CommitRecord, DurabilityError, ReconciliationService, RoundStats, Scheduler, ServiceConfig,
    ServiceReport,
};
pub use session::SessionManager;
pub use worker::{WorkerPool, WorkerProfile, WorkerStats};
