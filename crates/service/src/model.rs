//! The serving-model abstraction.
//!
//! [`ServeModel`] is the exact query/commit surface the round loop
//! ([`ReconciliationService`](crate::ReconciliationService)) and the
//! [`Dispatcher`](crate::Dispatcher) need from the probabilistic network
//! they serve. [`smn_core::ProbabilisticNetwork`] is the canonical
//! in-process implementation; a distributed coordinator that owns the
//! same state across shard-server processes implements the same trait
//! and slots into the identical service unchanged — the round loop,
//! lease schedule and report format never know which one they drive.
//!
//! Every method is required to be a pure function of the model's
//! logical state (the network structure, the feedback set and the
//! per-component sample stores), so two implementations holding the
//! same logical state are interchangeable bit for bit. That is the
//! contract the distributed differential suite certifies.

use smn_core::feedback::{Assertion, Feedback};
use smn_core::{AssertError, GainSource, MatchingNetwork, ProbabilisticNetwork};
use smn_schema::CandidateId;

/// The query/commit surface a reconciliation service drives.
///
/// `Sync` is a supertrait because branch evaluations fan out across the
/// worker pool sharing one `&M`; implementations over external
/// connections guard them internally (e.g. a mutex per shard-server
/// link). [`GainSource`] is a supertrait because the dispatcher selects
/// through the model's incremental gain cache — a model that can price
/// gains can always price them incrementally, and the epoch contract
/// (globally unique stamps per real mutation) is implementable by
/// construction wherever the mutation entry points are.
pub trait ServeModel: Sync + GainSource {
    /// The matching network being reconciled.
    fn network(&self) -> &MatchingNetwork;

    /// The standing user feedback.
    fn feedback(&self) -> &Feedback;

    /// Inclusion probability of one candidate.
    fn probability(&self, c: CandidateId) -> f64;

    /// Network uncertainty (Shannon entropy over inclusion variables).
    fn entropy(&self) -> f64;

    /// Entropy relative to the pre-feedback baseline.
    fn normalized_entropy(&self) -> f64;

    /// Fraction of candidates asserted so far.
    fn effort(&self) -> f64;

    /// Candidates with `0 < p < 1`, in id order.
    fn uncertain_candidates(&self) -> Vec<CandidateId>;

    /// The conflict component (shard) owning a candidate.
    fn shard_of(&self, c: CandidateId) -> usize;

    /// One-step expected information gain for each pool candidate.
    fn information_gains(&self, pool: &[CandidateId]) -> Vec<f64>;

    /// Exact posterior entropy of each hypothetical assertion, priced
    /// per shard without mutating the model. Partitioning a batch must
    /// never change its values.
    fn what_if_batch(&self, queries: &[(CandidateId, bool)]) -> Vec<f64>;

    /// Commits one assertion (validated; inconsistent approvals are the
    /// caller's fallback decision).
    fn assert_candidate(&mut self, assertion: Assertion) -> Result<(), AssertError>;

    /// The in-process [`ProbabilisticNetwork`] behind this model, if it
    /// is one. Durability attachment (snapshot + WAL publication) needs
    /// the concrete network; remote-backed models return `None` and the
    /// service surfaces a typed
    /// [`DurabilityError::RemoteModel`](crate::DurabilityError).
    fn as_local(&self) -> Option<&ProbabilisticNetwork> {
        None
    }
}

impl ServeModel for ProbabilisticNetwork {
    fn network(&self) -> &MatchingNetwork {
        ProbabilisticNetwork::network(self)
    }

    fn feedback(&self) -> &Feedback {
        ProbabilisticNetwork::feedback(self)
    }

    fn probability(&self, c: CandidateId) -> f64 {
        ProbabilisticNetwork::probability(self, c)
    }

    fn entropy(&self) -> f64 {
        ProbabilisticNetwork::entropy(self)
    }

    fn normalized_entropy(&self) -> f64 {
        ProbabilisticNetwork::normalized_entropy(self)
    }

    fn effort(&self) -> f64 {
        ProbabilisticNetwork::effort(self)
    }

    fn uncertain_candidates(&self) -> Vec<CandidateId> {
        ProbabilisticNetwork::uncertain_candidates(self)
    }

    fn shard_of(&self, c: CandidateId) -> usize {
        ProbabilisticNetwork::shard_of(self, c)
    }

    fn information_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        ProbabilisticNetwork::information_gains(self, pool)
    }

    fn what_if_batch(&self, queries: &[(CandidateId, bool)]) -> Vec<f64> {
        ProbabilisticNetwork::what_if_batch(self, queries)
    }

    fn assert_candidate(&mut self, assertion: Assertion) -> Result<(), AssertError> {
        ProbabilisticNetwork::assert_candidate(self, assertion)
    }

    fn as_local(&self) -> Option<&ProbabilisticNetwork> {
        Some(self)
    }
}
