//! Random-stream differential: a distributed run must stay *bitwise*
//! identical to the single-process network under arbitrary interleavings
//! of assertions and retirements — including the retirement epochs that
//! split components and migrate the rebuilt parts between servers. The
//! fixed-scenario certificates live in `differential.rs`; this suite
//! covers the streams nobody thought to write down (CI runs it at
//! `PROPTEST_CASES=1024`).

use proptest::prelude::*;
use smn_core::feedback::Assertion;
use smn_core::{ProbabilisticNetwork, ShardingConfig};
use smn_dist::{spawn_local_cluster, DistNetwork, Transport};
use smn_schema::CandidateId;
use smn_service::ServeModel;
use smn_testkit::{perturbed_network, tiny_sampler};

proptest! {
    #[test]
    fn random_assertion_and_retirement_streams_stay_bit_identical(
        servers in 1usize..4,
        net_seed in 0u64..64,
        ops in prop::collection::vec(any::<u32>(), 1..12),
    ) {
        let net = perturbed_network(2, 4, 0.5, 0.9, net_seed).0;
        let sampler = tiny_sampler(3);
        // sampled everywhere: exact-enumeration shards would certify
        // only the routing, not seed derivation or sample shipment
        let sharding = ShardingConfig { exact_threshold: 0, ..ShardingConfig::default() };
        let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
        let (links, handles) = spawn_local_cluster(servers);
        let links: Vec<Box<dyn Transport>> =
            links.into_iter().map(|l| Box::new(l) as Box<dyn Transport>).collect();
        let mut dist = DistNetwork::new(net, sampler, sharding, links).expect("bootstrap");
        prop_assert_eq!(dist.probabilities(), pn.probabilities());

        for &op in &ops {
            let pick = (op / 4) as usize;
            if op % 4 == 3 {
                // retire a random live candidate — the epoch path:
                // export, broadcast, rebuild split parts on new owners
                let count = pn.network().candidate_count();
                if count == 0 {
                    continue;
                }
                let c = CandidateId((pick % count) as u32);
                pn.retire(c).expect("single-process retire");
                dist.retire(c).expect("distributed retire");
            } else {
                let pool = pn.uncertain_candidates();
                if pool.is_empty() {
                    continue;
                }
                let assertion =
                    Assertion { candidate: pool[pick % pool.len()], approved: op % 2 == 0 };
                let expected = pn.assert_candidate(assertion);
                let got = dist.assert_candidate(assertion);
                prop_assert_eq!(format!("{got:?}"), format!("{expected:?}"));
            }
            prop_assert_eq!(dist.probabilities(), pn.probabilities());
            prop_assert_eq!(ServeModel::entropy(&dist), pn.entropy());
        }

        // full query surface at the end state
        let pool = pn.uncertain_candidates();
        prop_assert_eq!(dist.information_gains(&pool), pn.information_gains(&pool));
        let queries: Vec<(CandidateId, bool)> =
            pool.iter().flat_map(|&c| [(c, true), (c, false)]).collect();
        prop_assert_eq!(dist.what_if_batch(&queries), pn.what_if_batch(&queries));

        dist.shutdown().expect("orderly shutdown");
        for h in handles {
            h.join().expect("server thread").expect("clean server exit");
        }
    }
}
