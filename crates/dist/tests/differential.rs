//! The distributed differential certificate.
//!
//! Every test here drives the same operation stream into a
//! single-process [`ProbabilisticNetwork`] and a [`DistNetwork`] over N
//! shard servers, and requires *bitwise* agreement: posteriors
//! `f64`-equal, query surfaces value-equal, service reports byte-equal
//! as JSON. The suite runs at 1, 2 and 4 servers (the in-process
//! channel cluster — same protocol and frames as the multi-process
//! binary) and includes runs with at least one extension and one
//! retirement mid-stream, i.e. with components migrating between
//! servers while feedback is standing.

use smn_core::feedback::Assertion;
use smn_core::{ProbabilisticNetwork, SamplerConfig, ShardingConfig};
use smn_dist::{spawn_local_cluster, DistError, DistNetwork, Transport};
use smn_schema::{AttributeId, CandidateId, CandidateSet, CatalogBuilder, InteractionGraph};
use smn_service::{DurabilityError, ReconciliationService, ServeModel, ServiceConfig};
use smn_testkit::{fast_sampler, fig1_network, fig1_truth, perturbed_network, webform_federation};
use std::thread::JoinHandle;

/// Sampled everywhere — forces every component through the sampler so the
/// suite certifies seed derivation and sticky ownership, not just exact
/// enumeration.
fn sampled(cfg: ShardingConfig) -> ShardingConfig {
    ShardingConfig { exact_threshold: 0, ..cfg }
}

fn cluster(
    net: smn_core::MatchingNetwork,
    sampler: SamplerConfig,
    sharding: ShardingConfig,
    servers: usize,
) -> (DistNetwork, Vec<JoinHandle<Result<(), DistError>>>) {
    let (links, handles) = spawn_local_cluster(servers);
    let links: Vec<Box<dyn Transport>> =
        links.into_iter().map(|l| Box::new(l) as Box<dyn Transport>).collect();
    let dist = DistNetwork::new(net, sampler, sharding, links).expect("bootstrap");
    (dist, handles)
}

fn teardown(mut dist: DistNetwork, handles: Vec<JoinHandle<Result<(), DistError>>>) {
    dist.shutdown().expect("orderly shutdown");
    for h in handles {
        h.join().expect("server thread").expect("clean server exit");
    }
}

/// Asserts the full query surface of the two models agrees bitwise.
fn assert_surface_matches(pn: &ProbabilisticNetwork, dist: &DistNetwork, ctx: &str) {
    assert_eq!(dist.probabilities(), pn.probabilities(), "{ctx}: posterior");
    assert_eq!(ServeModel::entropy(dist), pn.entropy(), "{ctx}: entropy");
    assert_eq!(
        ServeModel::normalized_entropy(dist),
        pn.normalized_entropy(),
        "{ctx}: normalized entropy"
    );
    assert_eq!(ServeModel::effort(dist), pn.effort(), "{ctx}: effort");
    let pool = pn.uncertain_candidates();
    assert_eq!(ServeModel::uncertain_candidates(dist), pool, "{ctx}: pool");
    assert_eq!(dist.information_gains(&pool), pn.information_gains(&pool), "{ctx}: gains");
    let queries: Vec<(CandidateId, bool)> =
        pool.iter().flat_map(|&c| [(c, true), (c, false)]).collect();
    assert_eq!(dist.what_if_batch(&queries), pn.what_if_batch(&queries), "{ctx}: what-if");
}

/// Drives `steps` deterministic assertions into both models, checking the
/// whole surface after each: approve the pool candidate whose posterior
/// is highest, reject the one whose posterior is lowest, alternating.
fn drive_assertions(
    pn: &mut ProbabilisticNetwork,
    dist: &mut DistNetwork,
    steps: usize,
    ctx: &str,
) {
    for step in 0..steps {
        let pool = pn.uncertain_candidates();
        let Some(&candidate) = (if step % 2 == 0 {
            pool.iter().max_by(|&&a, &&b| {
                pn.probability(a).total_cmp(&pn.probability(b)).then(a.0.cmp(&b.0))
            })
        } else {
            pool.iter().min_by(|&&a, &&b| {
                pn.probability(a).total_cmp(&pn.probability(b)).then(a.0.cmp(&b.0))
            })
        }) else {
            return; // fully reconciled
        };
        let assertion = Assertion { candidate, approved: step % 2 == 0 };
        let expected = pn.assert_candidate(assertion);
        let got = dist.assert_candidate(assertion);
        assert_eq!(
            format!("{got:?}"),
            format!("{expected:?}"),
            "{ctx} step {step}: assert outcome"
        );
        assert_surface_matches(pn, dist, &format!("{ctx} step {step}"));
    }
}

#[test]
fn presets_match_single_process_at_1_2_and_4_servers() {
    let cases: Vec<(&str, smn_core::MatchingNetwork)> = vec![
        ("fig1", fig1_network()),
        ("perturbed", perturbed_network(3, 6, 0.6, 0.9, 9).0),
        ("federation", webform_federation(3, 42).0),
    ];
    for (name, net) in cases {
        for servers in [1usize, 2, 4] {
            for (cfg_name, cfg) in [
                ("exact", ShardingConfig::default()),
                ("sampled", sampled(ShardingConfig::default())),
            ] {
                let ctx = format!("{name}/{servers} servers/{cfg_name}");
                let sampler = fast_sampler(5);
                let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, cfg);
                let (mut dist, handles) = cluster(net.clone(), sampler, cfg, servers);
                assert_surface_matches(&pn, &dist, &format!("{ctx} bootstrap"));
                drive_assertions(&mut pn, &mut dist, 6, &ctx);
                teardown(dist, handles);
            }
        }
    }
}

/// `m` disjoint one-to-one conflict clusters over a 2-schema catalog:
/// cluster `i` is `{a_i–b_2i, a_i–b_2i+1}` (candidates `2i`, `2i+1`).
/// The arrival `a1–b0` couples clusters 0 and 1 into one component
/// while the other `m − 2` stay intact (and, distributed, stay on
/// their servers — the sticky-ownership rule under renumbering).
fn clusters_network(m: usize) -> smn_core::MatchingNetwork {
    let mut b = CatalogBuilder::new();
    b.add_schema_with_attributes("A", (0..m).map(|i| format!("a{i}"))).unwrap();
    b.add_schema_with_attributes("B", (0..2 * m).map(|i| format!("b{i}"))).unwrap();
    let cat = b.build();
    let g = InteractionGraph::complete(2);
    let mut cs = CandidateSet::new(&cat);
    let a = AttributeId::from_index;
    for i in 0..m {
        cs.add(&cat, Some(&g), a(i), a(m + 2 * i), 0.9).unwrap(); // c_2i
        cs.add(&cat, Some(&g), a(i), a(m + 2 * i + 1), 0.8).unwrap(); // c_2i+1
    }
    smn_core::MatchingNetwork::new(cat, g, cs, smn_constraints::ConstraintConfig::default())
}

#[test]
fn evolution_migrates_components_and_stays_bit_identical() {
    let mut saw_migration = false;
    for servers in [1usize, 2, 4] {
        for (cfg_name, cfg) in
            [("exact", ShardingConfig::default()), ("sampled", sampled(ShardingConfig::default()))]
        {
            let ctx = format!("evolution/{servers} servers/{cfg_name}");
            let m = 6;
            let net = clusters_network(m);
            let sampler = fast_sampler(7);
            let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, cfg);
            let (mut dist, handles) = cluster(net, sampler, cfg, servers);

            // feedback first, so the migrated state is not pristine
            let seed_assert = Assertion { candidate: CandidateId(0), approved: false };
            pn.assert_candidate(seed_assert).unwrap();
            dist.assert_candidate(seed_assert).unwrap();
            assert_surface_matches(&pn, &dist, &format!("{ctx} pre-extend"));

            // -- extend: a_i–b_2j merges clusters i and j into one
            //    component, which is placed fresh and rebuilt from
            //    shipped exports. Pick two clusters living on different
            //    servers when the placement offers them, so the merge
            //    provably pulls state across a server boundary.
            let owner_of_cluster = |dist: &DistNetwork, i: usize| {
                dist.owner_of(ServeModel::shard_of(dist, CandidateId((2 * i) as u32)))
            };
            let (i, j) = (0..m)
                .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
                .find(|&(i, j)| owner_of_cluster(&dist, i) != owner_of_cluster(&dist, j))
                .unwrap_or((0, 1));
            let (owner_a, owner_b) = (owner_of_cluster(&dist, i), owner_of_cluster(&dist, j));
            let (ax, by) = (AttributeId::from_index(i), AttributeId::from_index(m + 2 * j));
            let arrival_pn = pn.extend(ax, by, 0.6).unwrap();
            let arrival = dist.extend(ax, by, 0.6).unwrap();
            assert_eq!(arrival, arrival_pn, "{ctx}: arrival id");
            let merged_owner = dist.owner_of(ServeModel::shard_of(&dist, arrival));
            if merged_owner != owner_a || merged_owner != owner_b {
                saw_migration = true;
            }
            assert_surface_matches(&pn, &dist, &format!("{ctx} post-extend"));
            drive_assertions(&mut pn, &mut dist, 2, &format!("{ctx} merged"));

            // -- retire the arrival: the merged component dissolves back
            //    into parts, each rebuilt from the same shipped state
            pn.retire(arrival).unwrap();
            dist.retire(arrival).unwrap();
            assert_surface_matches(&pn, &dist, &format!("{ctx} post-retire"));
            drive_assertions(&mut pn, &mut dist, 2, &format!("{ctx} split"));

            teardown(dist, handles);
        }
    }
    assert!(
        saw_migration,
        "no combination moved a component across servers — the suite is not \
         exercising migration"
    );
}

#[test]
fn rejections_match_and_leave_the_cluster_untouched() {
    let net = clusters_network(2);
    let sampler = fast_sampler(3);
    let cfg = ShardingConfig::default();
    let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, cfg);
    let (mut dist, handles) = cluster(net, sampler, cfg, 2);

    let c = CandidateId(0); // a0–b0
    pn.assert_candidate(Assertion { candidate: c, approved: true }).unwrap();
    dist.assert_candidate(Assertion { candidate: c, approved: true }).unwrap();
    let generation = dist.generation();
    let before = dist.probabilities().to_vec();

    // contradictory, inconsistent and duplicate assertions all reject
    // (or no-op) identically, without a cluster round trip
    for assertion in [
        Assertion { candidate: c, approved: false }, // contradicts
        Assertion { candidate: c, approved: true },  // same-way no-op
        Assertion { candidate: CandidateId(1), approved: true }, // a0–b1 conflicts with c0
    ] {
        let expected = pn.assert_candidate(assertion);
        let got = dist.assert_candidate(assertion);
        assert_eq!(format!("{got:?}"), format!("{expected:?}"), "{assertion:?}");
    }
    assert_eq!(dist.generation(), generation, "rejections must not bump the generation");
    assert_eq!(dist.probabilities(), &before[..], "rejections must not touch the posterior");

    // structure-level evolution rejections are typed and leave every
    // process consistent (the next operation still round-trips)
    assert!(matches!(dist.retire(CandidateId(99)), Err(DistError::Schema(_))));
    assert!(pn.retire(CandidateId(99)).is_err());
    assert_surface_matches(&pn, &dist, "after rejected retire");

    teardown(dist, handles);
}

#[test]
fn the_service_report_is_byte_identical_over_a_cluster() {
    let config = ServiceConfig {
        sampler: fast_sampler(11),
        redundancy: 2,
        threads: 1,
        seed: 0xD15C0,
        ..ServiceConfig::default()
    };
    let error_rates = [0.05, 0.1, 0.2];

    let mut local = ReconciliationService::new(fig1_network(), fig1_truth(), error_rates, config);
    let local_report = local.run();

    let (dist, handles) = cluster(fig1_network(), config.sampler, config.sharding, 2);
    let mut served: ReconciliationService<DistNetwork> =
        ReconciliationService::with_model(dist, fig1_truth(), error_rates, config);
    let dist_report = served.run();

    assert_eq!(
        serde_json::to_string(&local_report).unwrap(),
        serde_json::to_string(&dist_report).unwrap(),
        "a cluster-backed service must reproduce the in-process report byte for byte"
    );
    teardown(served.into_model(), handles);
}

#[test]
fn durability_on_a_remote_model_is_a_typed_error() {
    let config = ServiceConfig { sampler: fast_sampler(13), ..ServiceConfig::default() };
    let (dist, handles) = cluster(fig1_network(), config.sampler, config.sharding, 2);
    let mut served: ReconciliationService<DistNetwork> =
        ReconciliationService::with_model(dist, fig1_truth(), [0.1], config);
    let err = served
        .attach_durability(std::env::temp_dir().join("smn-dist-never-created"), 4)
        .expect_err("remote models cannot attach in-process durability");
    assert!(matches!(err, DurabilityError::RemoteModel));
    teardown(served.into_model(), handles);
}

#[test]
fn a_tcp_cluster_matches_the_channel_cluster() {
    use smn_dist::{serve, TcpTransport};
    use std::net::{TcpListener, TcpStream};

    let sampler = fast_sampler(17);
    let cfg = ShardingConfig::default();
    let mut pn = ProbabilisticNetwork::new_sharded(fig1_network(), sampler, cfg);

    let mut links: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..2 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        handles.push(std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            serve(&mut t)
        }));
        links.push(Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap()));
    }
    let mut dist = DistNetwork::new(fig1_network(), sampler, cfg, links).unwrap();
    assert_surface_matches(&pn, &dist, "tcp bootstrap");
    drive_assertions(&mut pn, &mut dist, 3, "tcp");
    teardown(dist, handles);
}

/// The cached-selection certificate over a cluster: a [`Dispatcher`]
/// leasing from the [`DistNetwork`] — whose gain cache refreshes dirty
/// components through a *single-server* fan-out — must replay, pick for
/// pick and score bit for score bit, a fresh-scan
/// [`smn_core::InformationGainSelection`] over the single-process
/// network, through a stream that asserts, extends and retires
/// mid-flight. Runs at 1, 2 and 4 servers.
#[test]
fn cached_dispatch_over_a_cluster_matches_a_fresh_single_process_scan() {
    use smn_core::selection::SelectionStrategy;
    use smn_core::InformationGainSelection;
    use smn_service::Dispatcher;

    let (net, _) = webform_federation(3, 42);
    for servers in [1usize, 2, 4] {
        let ctx = format!("cached dispatch/{servers} servers");
        let sampler = fast_sampler(5);
        let cfg = ShardingConfig::default();
        let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, cfg);
        let (mut dist, handles) = cluster(net.clone(), sampler, cfg, servers);
        let mut fresh = InformationGainSelection::new(7).without_cache();
        let mut dispatcher = Dispatcher::new(7);
        let mut driven = 0usize;
        for step in 0..18 {
            let expected = fresh.select_with_score(&pn);
            let leases = dispatcher.lease_round(&dist, 1, 1, 1, step);
            let got = leases.first().map(|l| (l.candidate, l.score.map(f64::to_bits)));
            assert_eq!(
                got,
                expected.map(|(c, s)| (c, s.map(f64::to_bits))),
                "{ctx} step {step}: lease vs fresh scan"
            );
            let Some((candidate, _)) = expected else { break };
            driven += 1;
            // deterministic verdict, identical on both models
            let approved = pn.probability(candidate) > 0.5;
            let assertion = Assertion { candidate, approved };
            let a = pn.assert_candidate(assertion);
            let b = dist.assert_candidate(assertion);
            assert_eq!(format!("{b:?}"), format!("{a:?}"), "{ctx} step {step}: outcome");
            // evolution mid-stream: the structure epoch must flush the
            // cache identically on both sides
            if step == 5 {
                let cat = pn.network().catalog().clone();
                let free = (0..cat.attribute_count())
                    .flat_map(|x| ((x + 1)..cat.attribute_count()).map(move |y| (x, y)))
                    .map(|(x, y)| (AttributeId::from_index(x), AttributeId::from_index(y)))
                    .find(|&(x, y)| {
                        cat.schema_of(x) != cat.schema_of(y)
                            && pn.network().candidates().find(x, y).is_none()
                    })
                    .expect("the federation leaves cross-schema pairs open");
                pn.extend(free.0, free.1, 0.5).unwrap();
                dist.extend(free.0, free.1, 0.5).unwrap();
            }
            if step == 11 {
                pn.retire(CandidateId(0)).unwrap();
                dist.retire(CandidateId(0)).unwrap();
            }
            assert_eq!(dist.probabilities(), pn.probabilities(), "{ctx} step {step}: posterior");
        }
        assert!(driven >= 13, "{ctx}: stream ended early after {driven} picks");
        teardown(dist, handles);
    }
}
