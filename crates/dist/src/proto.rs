//! The coordinator ↔ shard-server message vocabulary.
//!
//! Every message is one `smn-storage` [frame](smn_storage::Frame)
//! (magic, version, kind, length, CRC-64/XZ); the payloads reuse the
//! storage crate's existing encodings wherever state crosses the wire —
//! [`encode_snapshot`](smn_storage::format::encode_snapshot) for the
//! structure-only bootstrap image,
//! [`encode_shard_state`](smn_storage::format::encode_shard_state) for
//! shard shipment, [`encode_record`](smn_storage::wal::encode_record)
//! WAL records for the command stream (asserts and evolution events are
//! literally the log entries a durable single-process run journals) —
//! so the distributed mode adds framing and routing, no new state
//! serialization. The few routing-only payloads (owned lists, query
//! batches, probability vectors) are encoded here with the same
//! little-endian conventions as the storage formats.
//!
//! The request/response discipline is strict lockstep: the coordinator
//! sends one request frame and reads exactly one response frame, which
//! is [`RESP_OK`] with the request-specific payload or [`RESP_ERR`]
//! with a UTF-8 message. Decoders never panic on any input.

use crate::error::DistError;
use smn_schema::CandidateId;

/// Bootstrap: owned-component list + structure-only snapshot image.
pub const REQ_BOOTSTRAP: u32 = 1;
/// One coordinator-validated assertion as a WAL `Assert` record.
pub const REQ_ASSERT: u32 = 2;
/// A batch of hypothetical assertions to price (`H'_k` each).
pub const REQ_WHAT_IF: u32 = 3;
/// Grouped information-gain scans, one group per owned component.
pub const REQ_GAINS: u32 = 4;
/// Export one owned shard's sample state for shipment.
pub const REQ_EXPORT: u32 = 5;
/// An evolution event (WAL `Extend`/`Retire` record) every server
/// applies to its structure mirror.
pub const REQ_APPLY_EVENT: u32 = 6;
/// Rebuild a merged component from the absorbed shards' exports.
pub const REQ_REBUILD_MERGED: u32 = 7;
/// Rebuild one split part from the dissolved shard's export.
pub const REQ_REBUILD_PART: u32 = 8;
/// Orderly shutdown of the server loop.
pub const REQ_SHUTDOWN: u32 = 9;
/// Success response; payload depends on the request kind.
pub const RESP_OK: u32 = 100;
/// Failure response; payload is a UTF-8 message.
pub const RESP_ERR: u32 = 101;

/// Little-endian u32 append (the storage formats' convention).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian f64 append (bit pattern, for bit-exact round trips).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A strict little-endian payload reader. Every shortfall is a typed
/// [`DistError::Protocol`], never a panic.
pub struct Rd<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Rd<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, off: 0 }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DistError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| DistError::Protocol(format!("truncated payload reading {what}")))?;
        let out = &self.bytes[self.off..end];
        self.off = end;
        Ok(out)
    }

    /// Reads one u32.
    pub fn u32(&mut self, what: &str) -> Result<u32, DistError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads one f64 bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64, DistError> {
        let b = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("8 bytes"))))
    }

    /// Reads one u8 as a strict bool (0/1).
    pub fn flag(&mut self, what: &str) -> Result<bool, DistError> {
        match self.take(1, what)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(DistError::Protocol(format!("{what}: flag byte {v}"))),
        }
    }

    /// The unread remainder (consumes it).
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.off..];
        self.off = self.bytes.len();
        out
    }

    /// Errors unless the payload was consumed exactly.
    pub fn finish(self, what: &str) -> Result<(), DistError> {
        if self.off == self.bytes.len() {
            Ok(())
        } else {
            Err(DistError::Protocol(format!(
                "{what}: {} trailing bytes",
                self.bytes.len() - self.off
            )))
        }
    }
}

/// Encodes a `u32`-id list with a leading count.
pub fn put_ids(buf: &mut Vec<u8>, ids: &[u32]) {
    put_u32(buf, ids.len() as u32);
    for &id in ids {
        put_u32(buf, id);
    }
}

/// Decodes a `u32`-id list with a leading count.
pub fn read_ids(rd: &mut Rd<'_>, what: &str) -> Result<Vec<u32>, DistError> {
    let n = rd.u32(what)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(rd.u32(what)?);
    }
    Ok(out)
}

/// Encodes an `f64` vector with a leading count (bit-exact).
pub fn put_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_f64(buf, v);
    }
}

/// Decodes an `f64` vector with a leading count.
pub fn read_f64s(rd: &mut Rd<'_>, what: &str) -> Result<Vec<f64>, DistError> {
    let n = rd.u32(what)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(rd.f64(what)?);
    }
    Ok(out)
}

/// Encodes the per-shard probability map a server answers bootstrap and
/// rebuild requests with: `(component id, local-order Eq. 2 vector)`
/// entries, ascending by component id.
pub fn put_shard_probs(buf: &mut Vec<u8>, entries: &[(usize, Vec<f64>)]) {
    put_u32(buf, entries.len() as u32);
    for (k, probs) in entries {
        put_u32(buf, *k as u32);
        put_f64s(buf, probs);
    }
}

/// Decodes a per-shard probability map.
pub fn read_shard_probs(rd: &mut Rd<'_>) -> Result<Vec<(usize, Vec<f64>)>, DistError> {
    let n = rd.u32("shard prob entries")? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let k = rd.u32("shard prob component")? as usize;
        let probs = read_f64s(rd, "shard probs")?;
        out.push((k, probs));
    }
    Ok(out)
}

/// Encodes a what-if batch: `(global candidate, hypothetical verdict)`.
pub fn encode_what_if(queries: &[(CandidateId, bool)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + queries.len() * 5);
    put_u32(&mut buf, queries.len() as u32);
    for &(c, approved) in queries {
        put_u32(&mut buf, c.0);
        buf.push(u8::from(approved));
    }
    buf
}

/// Decodes a what-if batch.
pub fn decode_what_if(payload: &[u8]) -> Result<Vec<(CandidateId, bool)>, DistError> {
    let mut rd = Rd::new(payload);
    let n = rd.u32("what-if count")? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let c = CandidateId(rd.u32("what-if candidate")?);
        let approved = rd.flag("what-if verdict")?;
        out.push((c, approved));
    }
    rd.finish("what-if batch")?;
    Ok(out)
}

/// Encodes grouped gain scans: per owned component, the pool candidates
/// (global ids) to price.
pub fn encode_gains(groups: &[(usize, Vec<CandidateId>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, groups.len() as u32);
    for (k, pool) in groups {
        put_u32(&mut buf, *k as u32);
        put_u32(&mut buf, pool.len() as u32);
        for c in pool {
            put_u32(&mut buf, c.0);
        }
    }
    buf
}

/// Decodes grouped gain scans.
#[allow(clippy::type_complexity)]
pub fn decode_gains(payload: &[u8]) -> Result<Vec<(usize, Vec<CandidateId>)>, DistError> {
    let mut rd = Rd::new(payload);
    let n = rd.u32("gain group count")? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let k = rd.u32("gain component")? as usize;
        let m = rd.u32("gain pool size")? as usize;
        let mut pool = Vec::with_capacity(m.min(1 << 20));
        for _ in 0..m {
            pool.push(CandidateId(rd.u32("gain candidate")?));
        }
        out.push((k, pool));
    }
    rd.finish("gain groups")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_payloads_round_trip() {
        let queries = vec![(CandidateId(3), true), (CandidateId(9), false)];
        assert_eq!(decode_what_if(&encode_what_if(&queries)).unwrap(), queries);

        let groups =
            vec![(0usize, vec![CandidateId(1)]), (4, vec![CandidateId(7), CandidateId(8)])];
        assert_eq!(decode_gains(&encode_gains(&groups)).unwrap(), groups);

        let mut buf = Vec::new();
        put_shard_probs(&mut buf, &[(2, vec![0.5, 0.25]), (5, vec![])]);
        let mut rd = Rd::new(&buf);
        assert_eq!(read_shard_probs(&mut rd).unwrap(), vec![(2, vec![0.5, 0.25]), (5, vec![])]);
        rd.finish("probs").unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let buf = encode_what_if(&[(CandidateId(1), true)]);
        assert!(matches!(decode_what_if(&buf[..buf.len() - 1]), Err(DistError::Protocol(_))));
        let mut extended = buf.clone();
        extended.push(0);
        assert!(matches!(decode_what_if(&extended), Err(DistError::Protocol(_))));
        let mut bad = buf;
        *bad.last_mut().unwrap() = 7; // verdict byte must be 0/1
        assert!(matches!(decode_what_if(&bad), Err(DistError::Protocol(_))));
    }
}
