//! Multi-process reconciliation: conflict-graph components placed on N
//! shard-server processes, a thin coordinator in front.
//!
//! The paper's factorization (posterior and entropy decompose over
//! conflict components) is what makes this exact rather than
//! approximate: every per-shard computation is *identical* wherever the
//! shard lives, so distributing the components across processes changes
//! the wall-clock, not one bit of the answer. The crate's contract —
//! certified by the differential suite at 1, 2 and 4 servers — is that
//! a distributed run is byte-identical to the single-process
//! [`ProbabilisticNetwork`](smn_core::ProbabilisticNetwork): posteriors
//! bitwise, service reports byte for byte, through online extensions
//! and retirements that migrate components between servers.
//!
//! ## Pieces
//!
//! * [`proto`] — the message vocabulary over `smn-storage` checksummed
//!   frames, reusing the storage crate's snapshot / shard-state / WAL
//!   encodings for everything stateful.
//! * [`transport`] — the lockstep [`Transport`] trait with an
//!   in-process channel pair (deterministic tests) and a TCP stream
//!   (real multi-process clusters over loopback).
//! * [`server`] — the shard-server loop: a
//!   [`ShardHost`](smn_core::ShardHost) behind a transport.
//! * [`coordinator`] — [`DistNetwork`], which owns routing, global
//!   feedback and the assembled posterior, and implements
//!   [`ServeModel`](smn_service::ServeModel) so the full
//!   [`ReconciliationService`](smn_service::ReconciliationService)
//!   round loop runs over a cluster unchanged.

pub mod coordinator;
pub mod error;
pub mod proto;
pub mod server;
pub mod transport;

pub use coordinator::DistNetwork;
pub use error::DistError;
pub use server::{serve, spawn_local_cluster};
pub use transport::{channel_pair, ChannelTransport, TcpTransport, Transport};
