//! The coordinator: one process owning all routing state, speaking the
//! [`proto`](crate::proto) protocol to N shard servers.
//!
//! [`DistNetwork`] mirrors exactly the *cheap* state of a single-process
//! [`ProbabilisticNetwork`](smn_core::ProbabilisticNetwork) — the
//! network structure (via a zero-owned
//! [`ShardHost`]), the global feedback, the global probability vector
//! and the entropy baseline — while every sample store lives on exactly
//! one shard server. Each operation routes to the owners and composes
//! replies with the same floating-point expressions the single-process
//! engine uses, so a distributed run is *byte-identical* to the
//! single-process run (posteriors bitwise, reports byte for byte) — the
//! contract the differential suite certifies at 1, 2 and 4 servers.
//!
//! ## Sticky ownership
//!
//! Placement starts from the consistent-hash ring
//! ([`Placement`]), but a live sampled store carries walk state its
//! serialized form deliberately does not (the save/load contract
//! certifies post-load maintenance only for exhausted stores) — so an
//! *intact* component must never relocate mid-run. The coordinator
//! therefore keeps an explicit owner map: through every evolution
//! renumbering, intact components inherit their server
//! (`owner[new_k] = owner[old_k]`); only dissolved-and-rebuilt
//! components (the merge of an extension, the split parts of a
//! retirement) are placed fresh on the ring. Rebuilt shards start from
//! fresh derived seeds wherever they land — bit-exact on any server —
//! which is exactly the single-process rebuild semantics.
//!
//! ## Failure semantics
//!
//! Structure-level rejections (contradictory assertions, duplicate
//! arrivals) are typed errors that leave the cluster untouched, exactly
//! like the single-process engine. *Link* failures mid-operation are
//! different: the cluster's state is no longer known to be coherent, so
//! the query paths that cannot surface an error through their
//! [`ServeModel`] signatures panic with context instead of fabricating
//! values. Construction, evolution and shutdown return typed
//! [`DistError`]s.

use crate::error::DistError;
use crate::proto::{
    encode_gains, encode_what_if, put_ids, put_u32, read_f64s, read_shard_probs, Rd,
    REQ_APPLY_EVENT, REQ_ASSERT, REQ_BOOTSTRAP, REQ_EXPORT, REQ_GAINS, REQ_REBUILD_MERGED,
    REQ_REBUILD_PART, REQ_SHUTDOWN, REQ_WHAT_IF, RESP_ERR, RESP_OK,
};
use crate::transport::Transport;
use smn_constraints::Placement;
use smn_core::entropy::{binary_entropy, entropy_of};
use smn_core::feedback::{Assertion, Feedback};
use smn_core::persist::NetworkEvent;
use smn_core::shard::ShardingConfig;
use smn_core::{AssertError, GainCache, GainSource, MatchingNetwork, SamplerConfig, ShardHost};
use smn_schema::{AttributeId, CandidateId};
use smn_service::ServeModel;
use smn_storage::format::encode_snapshot;
use smn_storage::wal::encode_record;
use smn_storage::Frame;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The multi-process probabilistic network: full structure and global
/// bookkeeping here, sample state distributed over shard servers.
pub struct DistNetwork {
    /// Structure mirror with zero owned components — conflict index,
    /// component partition and evolution logic, no samples.
    mirror: ShardHost,
    /// Global feedback mirror (servers hold only shard-local feedback).
    feedback: Feedback,
    /// Global Eq. 2 posterior, scattered from shard replies.
    probs: Vec<f64>,
    /// Construction-time entropy baseline (see `normalized_entropy`).
    initial_entropy: f64,
    /// Monotone mutation counter, same discipline as the single-process
    /// network.
    generation: u64,
    /// The consistent-hash ring for *fresh* placements.
    placement: Placement,
    /// `owner[k]` = server index holding component `k`'s samples. Sticky:
    /// intact components keep their server through evolution.
    owner: Vec<usize>,
    /// One lockstep link per shard server. Mutexed so `&self` query
    /// paths (what-if, gains) can speak while the service fans out.
    links: Vec<Mutex<Box<dyn Transport>>>,
    /// WAL-style sequence stamping of the command stream.
    seq: u64,
    /// Per-component mutation epochs for the coordinator-side gain
    /// cache — same discipline as the single-process network: a routed
    /// assert re-stamps only the owning component, so a selection
    /// refresh fans out to that component's server alone.
    shard_epochs: Vec<u64>,
    /// Structural epoch, reset wholesale by extend / retire.
    structure_epoch: u64,
    /// The coordinator-side Eq. 5 gain cache (see [`smn_core::gains`]).
    gain_cache: Arc<Mutex<GainCache>>,
}

impl DistNetwork {
    /// Bootstraps a cluster: derives the component partition, assigns
    /// ownership on the consistent-hash ring, ships every server the
    /// structure-only snapshot image plus its owned-component list, and
    /// assembles the initial posterior from the servers' replies.
    /// Servers build their shards locally from the image (samples never
    /// travel at bootstrap), with the same derived seeds the
    /// single-process build uses.
    pub fn new(
        network: MatchingNetwork,
        sampler: SamplerConfig,
        sharding: ShardingConfig,
        links: Vec<Box<dyn Transport>>,
    ) -> Result<Self, DistError> {
        if links.is_empty() {
            return Err(DistError::Protocol("a cluster needs at least one shard server".into()));
        }
        let mirror = ShardHost::new(network, sampler, sharding, &[]);
        let n = mirror.network().candidate_count();
        let count = mirror.component_count();
        let placement = Placement::new(links.len());
        let owner = placement.assign(count);
        let image = encode_snapshot(&mirror.structure(), &[], 0);
        let epoch = smn_core::gains::next_epoch();
        let mut this = Self {
            mirror,
            feedback: Feedback::new(n),
            probs: vec![0.0; n],
            initial_entropy: 0.0,
            generation: 0,
            placement,
            owner,
            links: links.into_iter().map(Mutex::new).collect(),
            seq: 0,
            shard_epochs: vec![epoch; count],
            structure_epoch: epoch,
            gain_cache: Arc::new(Mutex::new(GainCache::default())),
        };
        // every server builds its owned shards concurrently — the point
        // of the cluster; replies scatter afterwards in server order
        // (order is irrelevant anyway: owned sets are disjoint)
        let replies = {
            let this = &this;
            let image = &image;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..this.links.len())
                    .map(|server| {
                        s.spawn(move || -> Result<Vec<(usize, Vec<f64>)>, DistError> {
                            let owned: Vec<u32> = this
                                .owner
                                .iter()
                                .enumerate()
                                .filter(|&(_, &o)| o == server)
                                .map(|(k, _)| k as u32)
                                .collect();
                            let mut payload = Vec::with_capacity(4 + owned.len() * 4 + image.len());
                            put_ids(&mut payload, &owned);
                            payload.extend_from_slice(&image);
                            let reply = this.request(server, REQ_BOOTSTRAP, &payload)?;
                            let mut rd = Rd::new(&reply.payload);
                            let entries = read_shard_probs(&mut rd)?;
                            rd.finish("bootstrap reply")?;
                            Ok(entries)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("bootstrap fan-out thread"))
                    .collect::<Result<Vec<_>, DistError>>()
            })?
        };
        for entries in replies {
            for (k, local) in entries {
                scatter(&mut this.probs, this.mirror.components().members(k), k, &local)?;
            }
        }
        this.initial_entropy = entropy_of(&this.probs);
        Ok(this)
    }

    /// One lockstep request/response exchange with a server.
    fn request(&self, server: usize, kind: u32, payload: &[u8]) -> Result<Frame, DistError> {
        let mut link = self.links[server]
            .lock()
            .map_err(|_| DistError::Protocol(format!("link to server {server} poisoned")))?;
        link.send(kind, payload)?;
        let frame = link.recv()?;
        match frame.kind {
            RESP_OK => Ok(frame),
            RESP_ERR => {
                Err(DistError::Remote(String::from_utf8_lossy(&frame.payload).into_owned()))
            }
            k => Err(DistError::Protocol(format!("server {server} answered kind {k}"))),
        }
    }

    /// Shard servers in the cluster.
    pub fn servers(&self) -> usize {
        self.links.len()
    }

    /// The sticky component → server owner map.
    pub fn owner_of(&self, component: usize) -> usize {
        self.owner[component]
    }

    /// The global posterior (bitwise equal to the single-process vector).
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Monotone mutation counter (same discipline as the single-process
    /// network: bumped on integrated assertions and evolution only).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Mirrors [`ProbabilisticNetwork::validate_assertion`]: `Ok(true)`
    /// would mutate, `Ok(false)` is a same-way no-op, `Err` is the exact
    /// rejection. Pure local computation — conflicts never cross
    /// components, so the global mirror decides without a round trip.
    ///
    /// [`ProbabilisticNetwork::validate_assertion`]:
    /// smn_core::ProbabilisticNetwork::validate_assertion
    pub fn validate_assertion(&self, assertion: Assertion) -> Result<bool, AssertError> {
        let Assertion { candidate, approved } = assertion;
        if self.feedback.is_asserted(candidate) {
            let previously_approved = self.feedback.approved().contains(candidate);
            return if previously_approved == approved {
                Ok(false)
            } else {
                Err(AssertError::Contradictory { candidate, previously_approved })
            };
        }
        if approved && !self.mirror.network().index().can_add(self.feedback.approved(), candidate) {
            return Err(AssertError::InconsistentApproval(candidate));
        }
        Ok(true)
    }

    /// Whether integrating `(candidate, approved)` would leave the model
    /// untouched — the inertness guard of the batched what-if.
    fn assertion_is_inert(&self, candidate: CandidateId, approved: bool) -> bool {
        self.feedback.is_asserted(candidate)
            || (approved
                && !self.mirror.network().index().can_add(self.feedback.approved(), candidate))
    }

    /// Integrates a user assertion: validates against the global mirror,
    /// routes to the owning server, scatters the shard's new posterior.
    /// Same-way re-assertions are successful no-ops; rejections leave
    /// every process untouched. Panics only on link failure.
    pub fn assert_candidate(&mut self, assertion: Assertion) -> Result<(), AssertError> {
        if !self.validate_assertion(assertion)? {
            return Ok(());
        }
        self.feedback.assert(assertion);
        let Assertion { candidate, approved } = assertion;
        let k = self.mirror.component_of(candidate);
        self.seq += 1;
        let record = encode_record(self.seq, &NetworkEvent::Assert { candidate, approved });
        let reply = self
            .request(self.owner[k], REQ_ASSERT, &record)
            .unwrap_or_else(|e| panic!("assert lost the cluster: {e}"));
        let mut rd = Rd::new(&reply.payload);
        let entries =
            read_shard_probs(&mut rd).unwrap_or_else(|e| panic!("assert reply malformed: {e}"));
        for (rk, local) in entries {
            scatter(&mut self.probs, self.mirror.components().members(rk), rk, &local)
                .unwrap_or_else(|e| panic!("assert reply malformed: {e}"));
            // only the touched component's cached gains go stale
            self.shard_epochs[rk] = smn_core::gains::next_epoch();
        }
        self.generation += 1;
        Ok(())
    }

    /// Batched what-if: inert queries price at the current entropy; the
    /// rest fan out to their owners batched per server, and compose as
    /// `(H − H_k + H'_k).max(0)` — the identical expression (and
    /// association) of the single-process
    /// [`what_if_batch`](smn_core::ProbabilisticNetwork::what_if_batch),
    /// with `H` and `H_k` computed from the mirrored posterior and only
    /// `H'_k` measured remotely. Panics only on link failure.
    pub fn what_if_batch(&self, queries: &[(CandidateId, bool)]) -> Vec<f64> {
        let h_current = entropy_of(&self.probs);
        let mut out = vec![0.0; queries.len()];
        let mut by_server: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pos, &(c, approved)) in queries.iter().enumerate() {
            if self.assertion_is_inert(c, approved) {
                out[pos] = h_current;
            } else {
                by_server.entry(self.owner[self.mirror.component_of(c)]).or_default().push(pos);
            }
        }
        // fan out concurrently — one scoped thread per server, each on
        // its own link; composition stays serial (and deterministic)
        let groups: Vec<(usize, Vec<usize>)> = by_server.into_iter().collect();
        let replies: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .iter()
                .map(|(server, positions)| {
                    let batch: Vec<(CandidateId, bool)> =
                        positions.iter().map(|&p| queries[p]).collect();
                    s.spawn(move || {
                        let reply = self
                            .request(*server, REQ_WHAT_IF, &encode_what_if(&batch))
                            .unwrap_or_else(|e| panic!("what-if lost the cluster: {e}"));
                        let mut rd = Rd::new(&reply.payload);
                        read_f64s(&mut rd, "what-if reply")
                            .unwrap_or_else(|e| panic!("what-if: {e}"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("what-if fan-out thread")).collect()
        });
        for ((_, positions), values) in groups.iter().zip(replies) {
            assert_eq!(values.len(), positions.len(), "what-if reply miscounted");
            for (&pos, h_after) in positions.iter().zip(values) {
                let (c, _) = queries[pos];
                let members = self.mirror.components().members(self.mirror.component_of(c));
                let h_k: f64 = members.iter().map(|&g| binary_entropy(self.probs[g.index()])).sum();
                out[pos] = (h_current - h_k + h_after).max(0.0);
            }
        }
        out
    }

    /// Batch information gain: pool candidates bucket by component, the
    /// component groups batch per owning server, and every value comes
    /// from the same per-shard kernel over the same local probabilities
    /// as the single-process scan. Panics only on link failure.
    pub fn information_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        let mut out = vec![0.0; pool.len()];
        let mut by_component: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pos, &c) in pool.iter().enumerate() {
            by_component.entry(self.mirror.component_of(c)).or_default().push(pos);
        }
        let mut by_server: BTreeMap<usize, Vec<(usize, Vec<usize>)>> = BTreeMap::new();
        for (k, positions) in by_component {
            by_server.entry(self.owner[k]).or_default().push((k, positions));
        }
        // same scoped fan-out as the what-if path: one thread per server
        let fan: Vec<(usize, Vec<(usize, Vec<usize>)>)> = by_server.into_iter().collect();
        let replies: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = fan
                .iter()
                .map(|(server, groups)| {
                    let request: Vec<(usize, Vec<CandidateId>)> = groups
                        .iter()
                        .map(|(k, positions)| (*k, positions.iter().map(|&p| pool[p]).collect()))
                        .collect();
                    s.spawn(move || {
                        let reply = self
                            .request(*server, REQ_GAINS, &encode_gains(&request))
                            .unwrap_or_else(|e| panic!("gain scan lost the cluster: {e}"));
                        let mut rd = Rd::new(&reply.payload);
                        read_f64s(&mut rd, "gains reply").unwrap_or_else(|e| panic!("gains: {e}"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("gains fan-out thread")).collect()
        });
        for ((_, groups), values) in fan.iter().zip(replies) {
            let expected: usize = groups.iter().map(|(_, p)| p.len()).sum();
            assert_eq!(values.len(), expected, "gains reply miscounted");
            let mut it = values.into_iter();
            for (_, positions) in groups {
                for &pos in positions {
                    out[pos] = it.next().expect("counted above");
                }
            }
        }
        out
    }

    /// Exports a component's shard state from its owner (old numbering —
    /// called before the evolution event is broadcast).
    fn export(&self, owner: usize, k: usize) -> Result<Vec<u8>, DistError> {
        let mut payload = Vec::with_capacity(4);
        put_u32(&mut payload, k as u32);
        Ok(self.request(owner, REQ_EXPORT, &payload)?.payload)
    }

    /// Broadcasts an evolution event to every server (each applies it to
    /// its structure mirror and rekeys its owned shards).
    fn broadcast(&mut self, event: &NetworkEvent) -> Result<(), DistError> {
        self.seq += 1;
        let record = encode_record(self.seq, event);
        for server in 0..self.links.len() {
            self.request(server, REQ_APPLY_EVENT, &record)?;
        }
        Ok(())
    }

    /// Rewrites the owner map through an evolution: intact components
    /// inherit their server (sticky — their live walk state must not
    /// relocate), rebuilt components place fresh on the ring.
    fn rekey_owners(&mut self, remap: &[Option<usize>], rebuilt: &[usize]) {
        let old = std::mem::replace(&mut self.owner, vec![0; self.mirror.component_count()]);
        for (old_k, new_k) in remap.iter().enumerate() {
            if let Some(nk) = new_k {
                self.owner[*nk] = old[old_k];
            }
        }
        for &rk in rebuilt {
            self.owner[rk] = self.placement.server_of(rk);
        }
    }

    /// Admits a new candidate online — the distributed epoch of
    /// [`ProbabilisticNetwork::extend`]: export the about-to-dissolve
    /// components from their owners, broadcast the event (every server
    /// patches its structure and rekeys), re-place ownership, and
    /// rebuild the merged component at its new owner from the shipped
    /// states (ascending old component order, the exact single-process
    /// cross-combination order). The arrival's component may land on a
    /// different server than any absorbed source — that is the
    /// migration the differential suite certifies mid-run.
    ///
    /// [`ProbabilisticNetwork::extend`]:
    /// smn_core::ProbabilisticNetwork::extend
    pub fn extend(
        &mut self,
        x: AttributeId,
        y: AttributeId,
        confidence: f64,
    ) -> Result<CandidateId, DistError> {
        let old_owner = self.owner.clone();
        let (arrival, evo) =
            self.mirror.apply_extend(x, y, confidence).map_err(DistError::Schema)?;
        // export dissolved sources before any server learns of the event
        let mut shipments: Vec<(Vec<CandidateId>, Vec<u8>)> =
            Vec::with_capacity(evo.dissolved.len());
        for (old_k, members) in &evo.dissolved {
            shipments.push((members.clone(), self.export(old_owner[*old_k], *old_k)?));
        }
        self.broadcast(&NetworkEvent::Extend { a: x, b: y, confidence })?;
        self.feedback.grow();
        self.probs.push(0.0);
        self.rekey_owners(&evo.remap, &evo.rebuilt);
        let &[merged_k] = evo.rebuilt.as_slice() else {
            return Err(DistError::Protocol("an extension rebuilds exactly one component".into()));
        };
        let mut payload = Vec::new();
        put_u32(&mut payload, merged_k as u32);
        put_u32(&mut payload, shipments.len() as u32);
        for (members, state) in &shipments {
            put_ids(&mut payload, &members.iter().map(|c| c.0).collect::<Vec<u32>>());
            put_u32(&mut payload, state.len() as u32);
            payload.extend_from_slice(state);
        }
        let reply = self.request(self.owner[merged_k], REQ_REBUILD_MERGED, &payload)?;
        let mut rd = Rd::new(&reply.payload);
        for (rk, local) in read_shard_probs(&mut rd)? {
            scatter(&mut self.probs, self.mirror.components().members(rk), rk, &local)?;
        }
        self.generation += 1;
        self.bump_structure();
        if self.initial_entropy == 0.0 {
            self.initial_entropy = entropy_of(&self.probs);
        }
        Ok(arrival)
    }

    /// Retires a candidate online — the distributed epoch of
    /// [`ProbabilisticNetwork::retire`]: export the dissolving component
    /// from its owner, broadcast the event, re-place ownership, and
    /// rebuild every split part at its owner from the same shipped
    /// state (restrict + greedily re-maximize, the single-process
    /// carry-over).
    ///
    /// [`ProbabilisticNetwork::retire`]:
    /// smn_core::ProbabilisticNetwork::retire
    pub fn retire(&mut self, c: CandidateId) -> Result<(), DistError> {
        let old_owner = self.owner.clone();
        let evo = self.mirror.apply_retire(c).map_err(DistError::Schema)?;
        let (old_k, old_members) = evo
            .dissolved
            .first()
            .ok_or_else(|| DistError::Protocol("a retirement dissolves its component".into()))?;
        let shipment = self.export(old_owner[*old_k], *old_k)?;
        self.broadcast(&NetworkEvent::Retire { candidate: c })?;
        self.probs.remove(c.index());
        self.rekey_owners(&evo.remap, &evo.rebuilt);
        for &part_k in &evo.rebuilt {
            let mut payload = Vec::new();
            put_u32(&mut payload, part_k as u32);
            put_u32(&mut payload, c.0);
            put_ids(&mut payload, &old_members.iter().map(|m| m.0).collect::<Vec<u32>>());
            put_u32(&mut payload, shipment.len() as u32);
            payload.extend_from_slice(&shipment);
            let reply = self.request(self.owner[part_k], REQ_REBUILD_PART, &payload)?;
            let mut rd = Rd::new(&reply.payload);
            for (rk, local) in read_shard_probs(&mut rd)? {
                scatter(&mut self.probs, self.mirror.components().members(rk), rk, &local)?;
            }
        }
        self.feedback.retire(c);
        self.generation += 1;
        self.bump_structure();
        if self.initial_entropy == 0.0 {
            self.initial_entropy = entropy_of(&self.probs);
        }
        Ok(())
    }

    /// Re-stamps the structural epoch and every component epoch after an
    /// evolution step — components were renumbered, nothing cached by
    /// component id may be trusted again (same contract as the
    /// single-process network).
    fn bump_structure(&mut self) {
        let epoch = smn_core::gains::next_epoch();
        self.structure_epoch = epoch;
        self.shard_epochs = vec![epoch; self.mirror.component_count()];
    }

    /// Orderly cluster shutdown: every server acknowledges and exits its
    /// loop. Dropping a coordinator without calling this just closes the
    /// links — servers then exit with a link error instead of `Ok`.
    pub fn shutdown(&mut self) -> Result<(), DistError> {
        for server in 0..self.links.len() {
            self.request(server, REQ_SHUTDOWN, &[])?;
        }
        Ok(())
    }
}

/// Writes one shard's local-order probabilities into the global vector.
fn scatter(
    probs: &mut [f64],
    members: &[CandidateId],
    k: usize,
    local: &[f64],
) -> Result<(), DistError> {
    if members.len() != local.len() {
        return Err(DistError::Protocol(format!(
            "shard {k} reply carries {} probabilities for {} members",
            local.len(),
            members.len()
        )));
    }
    for (&g, &p) in members.iter().zip(local) {
        probs[g.index()] = p;
    }
    Ok(())
}

impl GainSource for DistNetwork {
    fn gain_cache(&self) -> &Mutex<GainCache> {
        &self.gain_cache
    }

    fn gain_structure_epoch(&self) -> u64 {
        self.structure_epoch
    }

    fn gain_shard_epochs(&self) -> &[u64] {
        &self.shard_epochs
    }

    fn gain_shard_of(&self, c: CandidateId) -> usize {
        self.mirror.component_of(c)
    }

    fn gain_shard_uncertain(&self, k: usize) -> Vec<CandidateId> {
        self.mirror
            .components()
            .members(k)
            .iter()
            .copied()
            .filter(|&c| {
                let p = self.probs[c.index()];
                p > 0.0 && p < 1.0
            })
            .collect()
    }

    fn compute_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        // buckets by component and batches per owning server — a refresh
        // of one dirty component therefore speaks to one server only
        DistNetwork::information_gains(self, pool)
    }
}

impl ServeModel for DistNetwork {
    fn network(&self) -> &MatchingNetwork {
        self.mirror.network()
    }

    fn feedback(&self) -> &Feedback {
        &self.feedback
    }

    fn probability(&self, c: CandidateId) -> f64 {
        self.probs[c.index()]
    }

    fn entropy(&self) -> f64 {
        entropy_of(&self.probs)
    }

    fn normalized_entropy(&self) -> f64 {
        if self.initial_entropy == 0.0 {
            0.0
        } else {
            entropy_of(&self.probs) / self.initial_entropy
        }
    }

    fn effort(&self) -> f64 {
        self.feedback.effort(self.mirror.network().candidate_count())
    }

    fn uncertain_candidates(&self) -> Vec<CandidateId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0 && p < 1.0)
            .map(|(i, _)| CandidateId::from_index(i))
            .collect()
    }

    fn shard_of(&self, c: CandidateId) -> usize {
        self.mirror.component_of(c)
    }

    fn information_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        DistNetwork::information_gains(self, pool)
    }

    fn what_if_batch(&self, queries: &[(CandidateId, bool)]) -> Vec<f64> {
        DistNetwork::what_if_batch(self, queries)
    }

    fn assert_candidate(&mut self, assertion: Assertion) -> Result<(), AssertError> {
        DistNetwork::assert_candidate(self, assertion)
    }
}
