//! The shard-server loop: a [`ShardHost`] behind a [`Transport`].
//!
//! A server is a pure request processor. It holds no placement logic, no
//! global feedback and no global probability vector — the coordinator
//! owns all routing state — so its entire behaviour is: bootstrap from
//! the structure image, then answer per-shard questions with the same
//! `smn-core` kernels the single-process engine runs. Every reply is
//! [`RESP_OK`] with the request-specific payload or [`RESP_ERR`] with a
//! message; a malformed frame never kills the loop, only the request.

use crate::error::DistError;
use crate::proto::{
    self, put_f64s, put_shard_probs, read_ids, Rd, REQ_APPLY_EVENT, REQ_ASSERT, REQ_BOOTSTRAP,
    REQ_EXPORT, REQ_GAINS, REQ_REBUILD_MERGED, REQ_REBUILD_PART, REQ_SHUTDOWN, REQ_WHAT_IF,
    RESP_ERR, RESP_OK,
};
use crate::transport::{channel_pair, ChannelTransport, Transport};
use smn_core::persist::{NetworkEvent, ShardState};
use smn_core::ShardHost;
use smn_schema::CandidateId;
use smn_storage::format::{decode_shard_state, decode_snapshot, encode_shard_state};
use smn_storage::wal::decode_record;
use smn_storage::Frame;
use std::thread::JoinHandle;

/// Runs one shard server over `transport` until the coordinator sends
/// [`REQ_SHUTDOWN`] (clean `Ok`) or the link drops (`Err`). Request
/// failures — unknown kinds, malformed payloads, questions about
/// components this server does not own — are answered with
/// [`RESP_ERR`] and the loop continues.
pub fn serve(transport: &mut dyn Transport) -> Result<(), DistError> {
    let mut host: Option<ShardHost> = None;
    loop {
        let frame = transport.recv()?;
        if frame.kind == REQ_SHUTDOWN {
            transport.send(RESP_OK, &[])?;
            return Ok(());
        }
        match handle(&mut host, &frame) {
            Ok(payload) => transport.send(RESP_OK, &payload)?,
            Err(msg) => transport.send(RESP_ERR, msg.as_bytes())?,
        }
    }
}

/// Dispatches one request against the (possibly not yet bootstrapped)
/// host. String errors become [`RESP_ERR`] payloads.
fn handle(host: &mut Option<ShardHost>, frame: &Frame) -> Result<Vec<u8>, String> {
    if frame.kind == REQ_BOOTSTRAP {
        let mut rd = Rd::new(&frame.payload);
        let owned: Vec<usize> = read_ids(&mut rd, "owned components")
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|k| k as usize)
            .collect();
        let (state, _, _) = decode_snapshot(rd.rest()).map_err(|e| e.to_string())?;
        let built = ShardHost::from_structure(&state, &owned)?;
        let entries: Vec<(usize, Vec<f64>)> = built
            .owned_components()
            .into_iter()
            .map(|k| (k, built.shard_probabilities(k).expect("owned shard has probabilities")))
            .collect();
        let mut reply = Vec::new();
        put_shard_probs(&mut reply, &entries);
        *host = Some(built);
        return Ok(reply);
    }
    let host = host.as_mut().ok_or("server not bootstrapped")?;
    match frame.kind {
        REQ_ASSERT => {
            let (_, event) = decode_record(&frame.payload).map_err(|e| e.to_string())?;
            let NetworkEvent::Assert { candidate, approved } = event else {
                return Err("assert request carries a non-assert record".into());
            };
            let probs = host
                .assert_unchecked(candidate, approved)
                .ok_or("assertion routed to a non-owner")?;
            let k = host.component_of(candidate);
            let mut reply = Vec::new();
            put_shard_probs(&mut reply, &[(k, probs)]);
            Ok(reply)
        }
        REQ_WHAT_IF => {
            let queries = proto::decode_what_if(&frame.payload).map_err(|e| e.to_string())?;
            let mut values = Vec::with_capacity(queries.len());
            for (c, approved) in queries {
                values
                    .push(host.entropy_after(c, approved).ok_or("what-if routed to a non-owner")?);
            }
            let mut reply = Vec::new();
            put_f64s(&mut reply, &values);
            Ok(reply)
        }
        REQ_GAINS => {
            let groups = proto::decode_gains(&frame.payload).map_err(|e| e.to_string())?;
            let mut values = Vec::new();
            for (k, pool) in groups {
                values.extend(host.gains(k, &pool).ok_or("gain scan routed to a non-owner")?);
            }
            let mut reply = Vec::new();
            put_f64s(&mut reply, &values);
            Ok(reply)
        }
        REQ_EXPORT => {
            let mut rd = Rd::new(&frame.payload);
            let k = rd.u32("export component").map_err(|e| e.to_string())? as usize;
            rd.finish("export request").map_err(|e| e.to_string())?;
            let state = host.export_shard(k).ok_or("export routed to a non-owner")?;
            Ok(encode_shard_state(&state))
        }
        REQ_APPLY_EVENT => {
            let (_, event) = decode_record(&frame.payload).map_err(|e| e.to_string())?;
            match event {
                NetworkEvent::Extend { a, b, confidence } => {
                    host.apply_extend(a, b, confidence).map_err(|e| e.to_string())?;
                }
                NetworkEvent::Retire { candidate } => {
                    host.apply_retire(candidate).map_err(|e| e.to_string())?;
                }
                NetworkEvent::Assert { .. } => {
                    return Err("apply-event request carries an assert record".into());
                }
            }
            Ok(Vec::new())
        }
        REQ_REBUILD_MERGED => {
            let mut rd = Rd::new(&frame.payload);
            let k = rd.u32("merged component").map_err(|e| e.to_string())? as usize;
            let sources = rd.u32("absorbed count").map_err(|e| e.to_string())? as usize;
            let mut absorbed: Vec<(Vec<CandidateId>, ShardState)> = Vec::with_capacity(sources);
            for _ in 0..sources {
                absorbed.push(read_shipment(&mut rd)?);
            }
            rd.finish("rebuild-merged request").map_err(|e| e.to_string())?;
            host.rebuild_merged(k, &absorbed)?;
            shard_probs_reply(host, k)
        }
        REQ_REBUILD_PART => {
            let mut rd = Rd::new(&frame.payload);
            let k = rd.u32("part component").map_err(|e| e.to_string())? as usize;
            let retired = CandidateId(rd.u32("retired candidate").map_err(|e| e.to_string())?);
            let (old_members, old_state) = read_shipment(&mut rd)?;
            rd.finish("rebuild-part request").map_err(|e| e.to_string())?;
            host.rebuild_part(k, &old_members, &old_state, retired)?;
            shard_probs_reply(host, k)
        }
        kind => Err(format!("unknown request kind {kind}")),
    }
}

/// Reads one shipped shard: its pre-event member list and serialized
/// state (length-prefixed [`encode_shard_state`] section).
fn read_shipment(rd: &mut Rd<'_>) -> Result<(Vec<CandidateId>, ShardState), String> {
    let members: Vec<CandidateId> = read_ids(rd, "shipped members")
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(CandidateId)
        .collect();
    let len = rd.u32("shipped state length").map_err(|e| e.to_string())? as usize;
    let bytes = rd.take(len, "shipped state").map_err(|e| e.to_string())?;
    let state = decode_shard_state(bytes).map_err(|e| e.to_string())?;
    Ok((members, state))
}

/// A single-shard probability reply (rebuilds, asserts).
fn shard_probs_reply(host: &ShardHost, k: usize) -> Result<Vec<u8>, String> {
    let probs = host.shard_probabilities(k).ok_or("rebuilt shard missing")?;
    let mut reply = Vec::new();
    put_shard_probs(&mut reply, &[(k, probs)]);
    Ok(reply)
}

/// Spawns `n` in-process shard servers on threads, returning the
/// coordinator-side transports (server order) and the join handles. The
/// deterministic harness of the differential suite: same protocol, same
/// frames, no child processes.
#[allow(clippy::type_complexity)]
pub fn spawn_local_cluster(
    n: usize,
) -> (Vec<ChannelTransport>, Vec<JoinHandle<Result<(), DistError>>>) {
    let mut links = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n.max(1) {
        let (coordinator_end, mut server_end) = channel_pair();
        links.push(coordinator_end);
        handles.push(std::thread::spawn(move || serve(&mut server_end)));
    }
    (links, handles)
}
