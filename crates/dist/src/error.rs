//! The typed error surface of the distributed mode. Nothing in this
//! crate panics on a wire byte or a peer failure: decoders bubble
//! [`StorageError`]s, protocol violations and remote rejections are
//! their own variants.

use smn_schema::SchemaError;
use smn_storage::StorageError;

/// Why a distributed operation failed.
#[derive(Debug)]
pub enum DistError {
    /// A frame or payload failed to encode/decode, or the underlying
    /// byte stream errored (I/O, truncation, checksum, version).
    Storage(StorageError),
    /// The peer spoke out of turn: an unexpected frame kind, a payload
    /// that does not parse as its kind demands, or a closed channel.
    Protocol(String),
    /// The peer processed the request and answered with a typed failure
    /// (e.g. a rebuild for a component it cannot validate).
    Remote(String),
    /// An evolution request the structure itself rejects (duplicate
    /// candidate, unknown id, …) — same errors as the single-process
    /// [`extend`](smn_core::ProbabilisticNetwork::extend)/
    /// [`retire`](smn_core::ProbabilisticNetwork::retire), and like them
    /// it leaves the cluster untouched.
    Schema(SchemaError),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "wire codec: {e}"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            Self::Remote(msg) => write!(f, "shard server error: {msg}"),
            Self::Schema(e) => write!(f, "evolution rejected: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DistError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}
