//! Frame transports: how a coordinator and a shard server exchange
//! [`Frame`]s.
//!
//! Two implementations of one blocking, lockstep [`Transport`] trait:
//!
//! * [`ChannelTransport`] — an in-process `mpsc` pair. The deterministic
//!   default of the test suite: the differential certificate runs N
//!   "servers" as threads of one process, so a failure is a plain
//!   backtrace, not a orphaned child process.
//! * [`TcpTransport`] — a `std::net::TcpStream` carrying the same
//!   frames byte for byte. `exp_dist` uses it to run real multi-process
//!   clusters over loopback; nothing in the protocol is
//!   transport-specific, which is what lets the in-process suite certify
//!   the multi-process binary.

use crate::error::DistError;
use smn_storage::{read_frame, write_frame, Frame};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};

/// One end of a bidirectional frame pipe. Blocking and lockstep: the
/// caller alternates `send` and `recv` according to the protocol roles.
pub trait Transport: Send {
    /// Ships one frame to the peer.
    fn send(&mut self, kind: u32, payload: &[u8]) -> Result<(), DistError>;
    /// Blocks for the peer's next frame.
    fn recv(&mut self) -> Result<Frame, DistError>;
}

/// An in-process transport over a pair of `mpsc` channels.
pub struct ChannelTransport {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
}

/// A connected pair of in-process transports (coordinator end, server
/// end).
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (ChannelTransport { tx: a_tx, rx: a_rx }, ChannelTransport { tx: b_tx, rx: b_rx })
}

impl Transport for ChannelTransport {
    fn send(&mut self, kind: u32, payload: &[u8]) -> Result<(), DistError> {
        self.tx
            .send(Frame { kind, payload: payload.to_vec() })
            .map_err(|_| DistError::Protocol("peer channel closed".into()))
    }

    fn recv(&mut self) -> Result<Frame, DistError> {
        self.rx.recv().map_err(|_| DistError::Protocol("peer channel closed".into()))
    }
}

/// A frame transport over one TCP stream (loopback in practice). Frames
/// are written and read with the storage crate's checksummed codec, so
/// a corrupted or truncated stream surfaces as a typed error.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. `TCP_NODELAY` is set — the protocol is
    /// strict request/response, so Nagle delays would serialize every
    /// round trip behind a timer.
    pub fn new(stream: TcpStream) -> Result<Self, DistError> {
        stream.set_nodelay(true).map_err(|e| DistError::Storage(e.into()))?;
        Ok(Self { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, kind: u32, payload: &[u8]) -> Result<(), DistError> {
        Ok(write_frame(&mut self.stream, kind, payload)?)
    }

    fn recv(&mut self) -> Result<Frame, DistError> {
        Ok(read_frame(&mut self.stream)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_exchanges_frames_both_ways() {
        let (mut a, mut b) = channel_pair();
        a.send(1, b"ping").unwrap();
        let got = b.recv().unwrap();
        assert_eq!((got.kind, got.payload.as_slice()), (1, &b"ping"[..]));
        b.send(2, b"pong").unwrap();
        assert_eq!(a.recv().unwrap().kind, 2);
    }

    #[test]
    fn a_dropped_peer_is_a_typed_error() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert!(matches!(a.send(1, b""), Err(DistError::Protocol(_))));
        assert!(matches!(a.recv(), Err(DistError::Protocol(_))));
    }

    #[test]
    fn tcp_transport_round_trips_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let frame = t.recv().unwrap();
            t.send(frame.kind + 1, &frame.payload).unwrap();
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap();
        t.send(41, b"loopback").unwrap();
        let echo = t.recv().unwrap();
        assert_eq!((echo.kind, echo.payload.as_slice()), (42, &b"loopback"[..]));
        server.join().unwrap();
    }
}
