//! Matcher abstractions.
//!
//! A [`NameScorer`] scores a pair of attribute *names*; a [`PairMatcher`]
//! turns a pair of *schemas* into scored attribute pairs; the free function
//! [`match_network`] runs a pair matcher over every edge of the interaction
//! graph and assembles the candidate set `C` of the network — exactly the
//! "Matchers" box of the paper's framework figure (Fig. 2).

use smn_schema::{AttributeId, CandidateSet, Catalog, InteractionGraph, SchemaError, SchemaId};

/// A scored attribute pair produced by a matcher for one schema pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// Attribute of the first schema.
    pub source: AttributeId,
    /// Attribute of the second schema.
    pub target: AttributeId,
    /// Matcher confidence in `[0, 1]`.
    pub score: f64,
}

/// Scores a pair of attribute names in `[0, 1]`.
///
/// Implemented by the first-line matchers in [`crate::firstline`]; ensembles
/// aggregate several of them.
pub trait NameScorer: Send + Sync {
    /// Short diagnostic name of the measure.
    fn name(&self) -> &'static str;
    /// Similarity of the two names.
    fn score(&self, a: &str, b: &str) -> f64;
}

/// Produces candidate correspondences for one schema pair.
///
/// Matchers see only two schemas at a time — the root cause of the
/// network-level constraint violations the paper reconciles.
pub trait PairMatcher {
    /// Human-readable matcher name (e.g. `coma-like`).
    fn name(&self) -> &str;

    /// Scored attribute pairs for `(s1, s2)`; only pairs the matcher deems
    /// candidates are returned.
    fn match_pair(&self, catalog: &Catalog, s1: SchemaId, s2: SchemaId) -> Vec<ScoredPair>;
}

/// Runs `matcher` over every edge of `graph` and collects the network-wide
/// candidate set `C = ⋃_{(s_i,s_j) ∈ E(G_S)} C_{i,j}`.
///
/// Duplicate pairs emitted for the same edge are kept at their maximum
/// score.
pub fn match_network(
    matcher: &impl PairMatcher,
    catalog: &Catalog,
    graph: &InteractionGraph,
) -> Result<CandidateSet, SchemaError> {
    let mut set = CandidateSet::new(catalog);
    for &(s1, s2) in graph.edges() {
        let mut pairs = matcher.match_pair(catalog, s1, s2);
        // deterministic insertion order: by (source, target)
        pairs.sort_by_key(|p| (p.source, p.target));
        for p in pairs {
            match set.add(catalog, Some(graph), p.source, p.target, p.score) {
                Ok(_) => {}
                Err(SchemaError::DuplicateCandidate(_, _)) => {
                    // keep the first (scores equal in practice); matchers
                    // should not emit duplicates, but be lenient.
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::CatalogBuilder;

    /// Trivial matcher: exact (case-insensitive) name equality.
    struct ExactName;

    impl PairMatcher for ExactName {
        fn name(&self) -> &str {
            "exact-name"
        }
        fn match_pair(&self, catalog: &Catalog, s1: SchemaId, s2: SchemaId) -> Vec<ScoredPair> {
            let mut out = Vec::new();
            for &a in &catalog.schema(s1).attributes {
                for &b in &catalog.schema(s2).attributes {
                    if catalog.attribute(a).name.eq_ignore_ascii_case(&catalog.attribute(b).name) {
                        out.push(ScoredPair { source: a, target: b, score: 1.0 });
                    }
                }
            }
            out
        }
    }

    #[test]
    fn match_network_only_visits_graph_edges() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["date", "title"]).unwrap();
        b.add_schema_with_attributes("B", ["Date", "name"]).unwrap();
        b.add_schema_with_attributes("C", ["date"]).unwrap();
        let cat = b.build();
        // only A—B is an edge; the A—C and B—C matches must not appear
        let g = InteractionGraph::from_edges(3, [(SchemaId(0), SchemaId(1))]);
        let set = match_network(&ExactName, &cat, &g).unwrap();
        assert_eq!(set.len(), 1);
        let c = &set.candidates()[0];
        assert_eq!(cat.attribute(c.corr.a()).name, "date");
        assert_eq!(cat.attribute(c.corr.b()).name, "Date");
    }

    #[test]
    fn match_network_complete_graph() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["date"]).unwrap();
        b.add_schema_with_attributes("B", ["date"]).unwrap();
        b.add_schema_with_attributes("C", ["date"]).unwrap();
        let cat = b.build();
        let set = match_network(&ExactName, &cat, &InteractionGraph::complete(3)).unwrap();
        assert_eq!(set.len(), 3, "one candidate per schema pair");
    }
}
