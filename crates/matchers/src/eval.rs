//! Matching quality measures: precision, recall, F1 of a candidate set (or
//! any correspondence collection) against the selective matching `M`.

use smn_schema::{CandidateSet, Correspondence};
use std::collections::HashSet;

/// Precision / recall / F1 of a matching against a ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// `|V ∩ M| / |V|` (1.0 for an empty `V`, by convention).
    pub precision: f64,
    /// `|V ∩ M| / |M|` (1.0 for an empty `M`, by convention).
    pub recall: f64,
    /// Number of true positives `|V ∩ M|`.
    pub true_positives: usize,
    /// `|V|`.
    pub proposed: usize,
    /// `|M|`.
    pub relevant: usize,
}

impl MatchQuality {
    /// Evaluates an arbitrary collection of correspondences against `truth`.
    pub fn of_pairs(
        proposed: impl IntoIterator<Item = Correspondence>,
        truth: impl IntoIterator<Item = Correspondence>,
    ) -> Self {
        let truth: HashSet<Correspondence> = truth.into_iter().collect();
        let mut tp = 0usize;
        let mut n = 0usize;
        let mut seen: HashSet<Correspondence> = HashSet::new();
        for c in proposed {
            if !seen.insert(c) {
                continue;
            }
            n += 1;
            if truth.contains(&c) {
                tp += 1;
            }
        }
        let precision = if n == 0 { 1.0 } else { tp as f64 / n as f64 };
        let recall = if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 };
        Self { precision, recall, true_positives: tp, proposed: n, relevant: truth.len() }
    }

    /// Evaluates a whole candidate set against `truth`.
    pub fn of(candidates: &CandidateSet, truth: impl IntoIterator<Item = Correspondence>) -> Self {
        Self::of_pairs(candidates.candidates().iter().map(|c| c.corr), truth)
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::AttributeId;

    fn corr(a: u32, b: u32) -> Correspondence {
        Correspondence::new(AttributeId(a), AttributeId(b))
    }

    #[test]
    fn basic_precision_recall() {
        let truth = [corr(0, 10), corr(1, 11), corr(2, 12), corr(3, 13)];
        let proposed = [corr(0, 10), corr(1, 11), corr(5, 15)];
        let q = MatchQuality::of_pairs(proposed, truth);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 0.5).abs() < 1e-12);
        assert_eq!(q.true_positives, 2);
        let f1 = q.f1();
        assert!((f1 - 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        let q = MatchQuality::of_pairs([], [corr(0, 1)]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
        let q = MatchQuality::of_pairs([corr(0, 1)], []);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 1.0);
        let q = MatchQuality::of_pairs([], []);
        assert_eq!(q.f1(), 2.0 * 1.0 * 1.0 / 2.0);
    }

    #[test]
    fn duplicates_counted_once() {
        let truth = [corr(0, 10)];
        let q = MatchQuality::of_pairs([corr(0, 10), corr(10, 0)], truth);
        assert_eq!(q.proposed, 1);
        assert_eq!(q.precision, 1.0);
    }

    #[test]
    fn f1_zero_when_both_zero() {
        let q = MatchQuality::of_pairs([corr(5, 6)], [corr(0, 1)]);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1(), 0.0);
    }
}
