//! Token-level similarity measures: Jaccard over token sets, the
//! Monge–Elkan hybrid, and IDF-weighted cosine over a corpus.

use super::jaro::jaro_winkler;
use super::tokenize::tokenize;
use std::collections::{HashMap, HashSet};

/// Jaccard similarity of the token *sets* of two names.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = tokenize(a).into_iter().collect();
    let tb: HashSet<String> = tokenize(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.len() + tb.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Symmetrized Monge–Elkan similarity with Jaro–Winkler as the inner
/// measure: each token of one name is matched to its best counterpart in
/// the other, averaged, then the two directions are averaged.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter().map(|x| ys.iter().map(|y| jaro_winkler(x, y)).fold(0.0, f64::max)).sum::<f64>()
            / xs.len() as f64
    };
    (dir(&ta, &tb) + dir(&tb, &ta)) / 2.0
}

/// Inverse-document-frequency model over a corpus of attribute names.
///
/// `idf(t) = ln(1 + N / df(t))` where `N` is the number of names in the
/// corpus and `df(t)` the number of names containing token `t`. Shared
/// boilerplate tokens ("id", "name", "code") receive low weight so that the
/// discriminative tokens decide the score — this is what makes the
/// AMC-style ensemble behave differently from plain token overlap.
#[derive(Debug, Clone)]
pub struct IdfModel {
    n_docs: f64,
    df: HashMap<String, usize>,
}

impl IdfModel {
    /// Builds the model from a corpus of attribute names.
    pub fn fit<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut n_docs = 0usize;
        for name in names {
            n_docs += 1;
            let uniq: HashSet<String> = tokenize(name).into_iter().collect();
            for t in uniq {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        Self { n_docs: n_docs as f64, df }
    }

    /// IDF weight of a token (unseen tokens get the maximal weight
    /// `ln(1 + N)`).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.df.get(token).copied().unwrap_or(0) as f64;
        if self.n_docs == 0.0 {
            return 0.0;
        }
        (1.0 + self.n_docs / df.max(1.0)).ln()
    }

    /// IDF-weighted cosine similarity between the token vectors of two
    /// names (term frequency is binary — attribute names rarely repeat
    /// tokens).
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let ta: HashSet<String> = tokenize(a).into_iter().collect();
        let tb: HashSet<String> = tokenize(b).into_iter().collect();
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        let dot: f64 = ta.intersection(&tb).map(|t| self.idf(t).powi(2)).sum();
        let na: f64 = ta.iter().map(|t| self.idf(t).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = tb.iter().map(|t| self.idf(t).powi(2)).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_jaccard_values() {
        assert_eq!(token_jaccard("releaseDate", "release_date"), 1.0);
        assert_eq!(token_jaccard("releaseDate", "screenDate"), 1.0 / 3.0);
        assert_eq!(token_jaccard("abc", "xyz"), 0.0);
        assert_eq!(token_jaccard("", ""), 1.0);
    }

    #[test]
    fn monge_elkan_behaviour() {
        assert_eq!(monge_elkan("releaseDate", "release_date"), 1.0);
        // shares the "date" token exactly, "screen" vs "release" partially
        let s = monge_elkan("screenDate", "releaseDate");
        assert!(s > 0.5 && s < 1.0, "{s}");
        assert_eq!(monge_elkan("", "x"), 0.0);
        assert_eq!(monge_elkan("", ""), 1.0);
        // symmetry by construction
        assert_eq!(
            monge_elkan("billingAddr", "addressBilling"),
            monge_elkan("addressBilling", "billingAddr")
        );
    }

    #[test]
    fn idf_downweights_common_tokens() {
        let corpus = ["customerId", "orderId", "productId", "shipDate", "customerName"];
        let model = IdfModel::fit(corpus);
        assert!(model.idf("id") < model.idf("ship"), "frequent token must weigh less");
        assert!(model.idf("unseen_token") >= model.idf("ship"));
    }

    #[test]
    fn idf_cosine_discriminates() {
        let corpus = ["customerId", "orderId", "productId", "shipDate", "orderDate"];
        let model = IdfModel::fit(corpus);
        // "orderId" vs "orderDate" share the discriminative token "order";
        // "customerId" vs "productId" share only the boilerplate "id".
        let strong = model.cosine("orderId", "orderDate");
        let weak = model.cosine("customerId", "productId");
        assert!(strong > weak, "{strong} vs {weak}");
        assert!((model.cosine("orderId", "order_id") - 1.0).abs() < 1e-12);
        assert_eq!(model.cosine("", ""), 1.0);
        assert_eq!(model.cosine("x", ""), 0.0);
    }

    #[test]
    fn empty_model_is_safe() {
        let model = IdfModel::fit(std::iter::empty());
        assert_eq!(model.idf("x"), 0.0);
        assert_eq!(model.cosine("a", "b"), 0.0);
    }
}
