//! String similarity measures and tokenization.
//!
//! All measures return a similarity in `[0, 1]` (1 = identical). They are
//! pure functions over `&str`, independent of the schema model, so they can
//! be tested against published reference values.

pub mod jaro;
pub mod levenshtein;
pub mod qgram;
pub mod token;
pub mod tokenize;

pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{levenshtein_distance, levenshtein_similarity};
pub use qgram::{qgram_dice, qgram_jaccard};
pub use token::{monge_elkan, token_jaccard, IdfModel};
pub use tokenize::tokenize;

/// Longest-common-prefix similarity: `|lcp| / max(|a|, |b|)` over characters.
pub fn prefix_similarity(a: &str, b: &str) -> f64 {
    let (ca, cb): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let max = ca.len().max(cb.len());
    if max == 0 {
        return 1.0;
    }
    let lcp = ca.iter().zip(&cb).take_while(|(x, y)| x == y).count();
    lcp as f64 / max as f64
}

/// Longest-common-suffix similarity: `|lcs| / max(|a|, |b|)` over characters.
pub fn suffix_similarity(a: &str, b: &str) -> f64 {
    let (ca, cb): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let max = ca.len().max(cb.len());
    if max == 0 {
        return 1.0;
    }
    let lcs = ca.iter().rev().zip(cb.iter().rev()).take_while(|(x, y)| x == y).count();
    lcs as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_suffix() {
        assert_eq!(prefix_similarity("releaseDate", "releaseDay"), 9.0 / 11.0);
        assert_eq!(suffix_similarity("screenDate", "releaseDate"), 4.0 / 11.0);
        assert_eq!(prefix_similarity("", ""), 1.0);
        assert_eq!(prefix_similarity("a", ""), 0.0);
        assert_eq!(suffix_similarity("abc", "abc"), 1.0);
    }
}
