//! Attribute-name tokenization.
//!
//! Schema attribute names mix naming conventions (`releaseDate`,
//! `release_date`, `RELEASE-DATE`, `addr2`). The tokenizer splits on
//! non-alphanumeric characters, camel-case boundaries and letter/digit
//! boundaries, and lowercases the result, so that token-level measures see
//! through convention differences.

/// Splits an attribute name into lowercase tokens.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    for ch in name.chars() {
        if !ch.is_alphanumeric() {
            flush(&mut tokens, &mut cur);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel = p.is_lowercase() && ch.is_uppercase();
            let letter_digit = p.is_alphabetic() != ch.is_alphabetic();
            // an uppercase run followed by lowercase starts a new word at the
            // last uppercase char: "XMLFile" → ["xml", "file"]
            let acronym_end = p.is_uppercase() && ch.is_lowercase() && cur.len() > 1;
            if camel || letter_digit {
                flush(&mut tokens, &mut cur);
            } else if acronym_end {
                let last = cur.pop().expect("cur.len() > 1");
                flush(&mut tokens, &mut cur);
                cur.push(last);
            }
        }
        cur.push(ch);
        prev = Some(ch);
    }
    flush(&mut tokens, &mut cur);
    tokens
}

fn flush(tokens: &mut Vec<String>, cur: &mut String) {
    if !cur.is_empty() {
        tokens.push(cur.to_lowercase());
        cur.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<&str> {
        // convenience for comparing against literals
        Box::leak(Box::new(tokenize(s))).iter().map(String::as_str).collect()
    }

    #[test]
    fn camel_case() {
        assert_eq!(toks("releaseDate"), vec!["release", "date"]);
        assert_eq!(toks("productionDate"), vec!["production", "date"]);
    }

    #[test]
    fn snake_kebab_space() {
        assert_eq!(toks("release_date"), vec!["release", "date"]);
        assert_eq!(toks("release-date"), vec!["release", "date"]);
        assert_eq!(toks("release date"), vec!["release", "date"]);
    }

    #[test]
    fn digits_split() {
        assert_eq!(toks("addr2"), vec!["addr", "2"]);
        assert_eq!(toks("line1Text"), vec!["line", "1", "text"]);
    }

    #[test]
    fn acronyms() {
        assert_eq!(toks("XMLFile"), vec!["xml", "file"]);
        assert_eq!(toks("customerID"), vec!["customer", "id"]);
        assert_eq!(toks("ID"), vec!["id"]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(toks(""), Vec::<&str>::new());
        assert_eq!(toks("___"), Vec::<&str>::new());
        assert_eq!(toks("a"), vec!["a"]);
        assert_eq!(toks("Date"), vec!["date"]);
    }

    #[test]
    fn all_tokens_lowercase_alphanumeric() {
        for name in ["BillingAddressLine1", "PO_Number", "e-mail Address"] {
            for t in tokenize(name) {
                assert!(t.chars().all(|c| c.is_lowercase() || c.is_numeric()), "{t}");
            }
        }
    }
}
