//! Jaro and Jaro–Winkler similarity.

/// Jaro similarity.
///
/// `m` characters match if they are equal and at most
/// `⌊max(|a|,|b|)/2⌋ − 1` positions apart; `t` is half the number of
/// matched-but-transposed characters. The similarity is
/// `(m/|a| + m/|b| + (m−t)/m) / 3`, or 0 when `m = 0` (1 for two empty
/// strings).
pub fn jaro(a: &str, b: &str) -> f64 {
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let window = (ca.len().max(cb.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; cb.len()];
    let mut a_matched = vec![false; ca.len()];
    let mut m = 0usize;
    for (i, &x) in ca.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(cb.len());
        for j in lo..hi {
            if !b_used[j] && cb[j] == x {
                b_used[j] = true;
                a_matched[i] = true;
                m += 1;
                break;
            }
        }
    }
    if m == 0 {
        return 0.0;
    }
    // count transpositions among matched characters in order
    let matched_b: Vec<char> =
        b_used.iter().enumerate().filter_map(|(j, &used)| used.then_some(cb[j])).collect();
    let mut transpositions = 0usize;
    let mut k = 0usize;
    for (i, &x) in ca.iter().enumerate() {
        if a_matched[i] {
            if x != matched_b[k] {
                transpositions += 1;
            }
            k += 1;
        }
    }
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / ca.len() as f64 + m / cb.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: boosts the Jaro score by the common-prefix
/// length `ℓ ≤ 4` with scaling factor `p = 0.1`:
/// `jw = jaro + ℓ·p·(1 − jaro)`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn published_reference_values() {
        close(jaro("MARTHA", "MARHTA"), 0.9444);
        close(jaro_winkler("MARTHA", "MARHTA"), 0.9611);
        close(jaro("DIXON", "DICKSONX"), 0.7667);
        close(jaro_winkler("DIXON", "DICKSONX"), 0.8133);
        close(jaro("JELLYFISH", "SMELLYFISH"), 0.8963);
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("date", "date"), 1.0);
        assert_eq!(jaro_winkler("date", "date"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        let pairs = [("releaseDate", "screenDate"), ("prod", "production"), ("a", "ab")];
        for (a, b) in pairs {
            close(jaro(a, b), jaro(b, a));
            close(jaro_winkler(a, b), jaro_winkler(b, a));
        }
    }

    #[test]
    fn winkler_never_decreases_jaro() {
        let pairs = [("release", "releese"), ("date", "data"), ("x", "y")];
        for (a, b) in pairs {
            assert!(jaro_winkler(a, b) >= jaro(a, b));
            assert!(jaro_winkler(a, b) <= 1.0);
        }
    }
}
