//! q-gram (character n-gram) set similarities.

use std::collections::HashSet;

/// Extracts the set of q-grams of `s`. Strings shorter than `q` contribute
/// themselves as a single gram so that very short attribute names (`id`,
/// `no`) still compare meaningfully.
fn grams(s: &str, q: usize) -> HashSet<Vec<char>> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return HashSet::new();
    }
    if chars.len() < q {
        return HashSet::from([chars]);
    }
    chars.windows(q).map(|w| w.to_vec()).collect()
}

/// Jaccard similarity of the q-gram sets: `|G_a ∩ G_b| / |G_a ∪ G_b|`.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    let (ga, gb) = (grams(a, q), grams(b, q));
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient of the q-gram sets: `2·|G_a ∩ G_b| / (|G_a| + |G_b|)`.
pub fn qgram_dice(a: &str, b: &str, q: usize) -> f64 {
    let (ga, gb) = (grams(a, q), grams(b, q));
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.intersection(&gb).count();
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dice_night_nacht_bigrams() {
        // bigrams: {ni, ig, gh, ht} vs {na, ac, ch, ht}: one common of 4+4
        assert!((qgram_dice("night", "nacht", 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jaccard_vs_dice_ordering() {
        // For non-trivial overlaps Jaccard ≤ Dice.
        let pairs = [("releaseDate", "releaseDay"), ("order", "ordering"), ("abc", "abd")];
        for (a, b) in pairs {
            assert!(qgram_jaccard(a, b, 3) <= qgram_dice(a, b, 3) + 1e-12);
        }
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(qgram_jaccard("date", "date", 3), 1.0);
        assert_eq!(qgram_dice("date", "date", 3), 1.0);
        assert_eq!(qgram_jaccard("aaa", "bbb", 3), 0.0);
        assert_eq!(qgram_dice("aaa", "bbb", 3), 0.0);
    }

    #[test]
    fn short_strings_fall_back_to_whole_string() {
        assert_eq!(qgram_jaccard("id", "id", 3), 1.0);
        assert_eq!(qgram_jaccard("id", "no", 3), 0.0);
        assert_eq!(qgram_jaccard("", "", 3), 1.0);
        assert_eq!(qgram_jaccard("", "a", 3), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("screenDate", "releaseDate"), ("po", "purchaseOrder")] {
            assert_eq!(qgram_jaccard(a, b, 3), qgram_jaccard(b, a, 3));
            assert_eq!(qgram_dice(a, b, 2), qgram_dice(b, a, 2));
        }
    }
}
