//! Levenshtein edit distance and the derived normalized similarity.

/// Classic Levenshtein distance (insertions, deletions, substitutions all
/// cost 1), computed with a two-row dynamic program in `O(|a|·|b|)` time and
/// `O(min(|a|,|b|))` space.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    // keep the shorter string in the inner dimension
    let (short, long) = if ca.len() <= cb.len() { (&ca, &cb) } else { (&cb, &ca) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)`.
///
/// Two empty strings are defined to be identical (similarity 1).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
    }

    #[test]
    fn symmetry() {
        assert_eq!(
            levenshtein_distance("date", "releaseDate"),
            levenshtein_distance("releaseDate", "date")
        );
    }

    #[test]
    fn similarity_bounds_and_values() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn unicode_is_char_based() {
        // two multi-byte chars, one substitution
        assert_eq!(levenshtein_distance("café", "cafe"), 1);
        assert_eq!(levenshtein_distance("über", "ober"), 1);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let (a, b, c) = ("order", "ordre", "odd");
        let ab = levenshtein_distance(a, b);
        let bc = levenshtein_distance(b, c);
        let ac = levenshtein_distance(a, c);
        assert!(ac <= ab + bc);
    }
}
