//! Ground-truth perturbation matcher.
//!
//! For controlled experiments the paper's figures need candidate sets with a
//! *known* error profile (e.g. "the precision of the generated candidate
//! correspondences in this dataset is about 0.67", §VI-B). The
//! [`PerturbationMatcher`] produces such sets directly: it keeps each true
//! correspondence with probability `recall` and adds wrong pairs until the
//! expected precision equals `precision`. Wrong pairs are biased towards
//! attributes that already participate in the truth (the hard confusions a
//! real matcher makes) with a configurable probability.
//!
//! Output is deterministic in the seed, independent of edge iteration order:
//! each schema pair derives its own RNG stream from `(seed, s1, s2)`.

use crate::matcher::{PairMatcher, ScoredPair};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use smn_schema::{AttributeId, Catalog, Correspondence, SchemaId};
use std::collections::HashSet;

/// A matcher that perturbs a known ground truth at target precision/recall.
#[derive(Debug, Clone)]
pub struct PerturbationMatcher {
    truth: HashSet<Correspondence>,
    /// Target precision of the emitted candidates (expected value).
    pub precision: f64,
    /// Target recall of the emitted candidates (expected value).
    pub recall: f64,
    /// Probability that a false candidate shares an attribute with a kept
    /// true one ("hard" confusion) rather than being a uniform wrong pair.
    pub confusion_bias: f64,
    seed: u64,
}

impl PerturbationMatcher {
    /// Creates a matcher for `truth` with the given targets.
    ///
    /// # Panics
    /// Panics unless `0 < precision ≤ 1` and `0 ≤ recall ≤ 1`.
    pub fn new(
        truth: impl IntoIterator<Item = Correspondence>,
        precision: f64,
        recall: f64,
        seed: u64,
    ) -> Self {
        assert!(precision > 0.0 && precision <= 1.0, "precision must be in (0,1]");
        assert!((0.0..=1.0).contains(&recall), "recall must be in [0,1]");
        Self { truth: truth.into_iter().collect(), precision, recall, confusion_bias: 0.7, seed }
    }

    /// Ground-truth membership test.
    pub fn is_true(&self, c: Correspondence) -> bool {
        self.truth.contains(&c)
    }

    fn pair_rng(&self, s1: SchemaId, s2: SchemaId) -> StdRng {
        let (lo, hi) = if s1.0 <= s2.0 { (s1, s2) } else { (s2, s1) };
        // simple splitmix-style stream derivation
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((lo.0 as u64) << 32 | hi.0 as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        StdRng::seed_from_u64(x)
    }
}

/// Confidence for a kept true candidate: skewed high but overlapping the
/// false range, as real matcher confidences do.
fn true_confidence(rng: &mut impl Rng) -> f64 {
    0.5 + 0.5 * rng.random::<f64>().sqrt()
}

/// Confidence for a false candidate: skewed low.
fn false_confidence(rng: &mut impl Rng) -> f64 {
    0.3 + 0.55 * rng.random::<f64>().powi(2)
}

impl PairMatcher for PerturbationMatcher {
    fn name(&self) -> &str {
        "perturbation"
    }

    fn match_pair(&self, catalog: &Catalog, s1: SchemaId, s2: SchemaId) -> Vec<ScoredPair> {
        let mut rng = self.pair_rng(s1, s2);
        let attrs1 = &catalog.schema(s1).attributes;
        let attrs2 = &catalog.schema(s2).attributes;
        // true correspondences of this pair
        let truths: Vec<Correspondence> = self
            .truth
            .iter()
            .filter(|c| {
                let (sa, sb) = (catalog.schema_of(c.a()), catalog.schema_of(c.b()));
                (sa == s1 && sb == s2) || (sa == s2 && sb == s1)
            })
            .copied()
            .collect();
        let mut emitted: HashSet<Correspondence> = HashSet::new();
        let mut out: Vec<ScoredPair> = Vec::new();
        let mut kept_true = 0usize;
        // deterministic order: sort truths
        let mut truths_sorted = truths.clone();
        truths_sorted.sort();
        for t in &truths_sorted {
            if rng.random_bool(self.recall) {
                kept_true += 1;
                emitted.insert(*t);
                out.push(ScoredPair {
                    source: t.a(),
                    target: t.b(),
                    score: true_confidence(&mut rng),
                });
            }
        }
        // expected number of false positives for the target precision
        let fp_target =
            (kept_true as f64 * (1.0 - self.precision) / self.precision).round() as usize;
        let max_pairs = attrs1.len() * attrs2.len();
        let mut guard = 0usize;
        while out.len() - kept_true < fp_target
            && emitted.len() < max_pairs
            && guard < 50 * max_pairs
        {
            guard += 1;
            let (a, b) = if !truths_sorted.is_empty() && rng.random_bool(self.confusion_bias) {
                // hard confusion: reuse one endpoint of a true correspondence
                let t = *truths_sorted.choose(&mut rng).expect("non-empty");
                let (ta, tb) = (t.a(), t.b());
                if rng.random_bool(0.5) {
                    (ta, *pick(attrs2, attrs1, catalog.schema_of(ta), &mut rng, catalog))
                } else {
                    (*pick(attrs1, attrs2, catalog.schema_of(tb), &mut rng, catalog), tb)
                }
            } else {
                (
                    *attrs1.choose(&mut rng).expect("schema has attributes"),
                    *attrs2.choose(&mut rng).expect("schema has attributes"),
                )
            };
            if a == b || catalog.schema_of(a) == catalog.schema_of(b) {
                continue;
            }
            let c = Correspondence::new(a, b);
            if self.truth.contains(&c) || !emitted.insert(c) {
                continue;
            }
            out.push(ScoredPair { source: a, target: b, score: false_confidence(&mut rng) });
        }
        out
    }
}

/// Picks an attribute from whichever of the two slices does **not** belong
/// to `other_schema` (i.e. the opposite side of a true endpoint).
fn pick<'a>(
    attrs1: &'a [AttributeId],
    attrs2: &'a [AttributeId],
    other_schema: SchemaId,
    rng: &mut impl Rng,
    catalog: &Catalog,
) -> &'a AttributeId {
    let side = if attrs1.first().map(|&a| catalog.schema_of(a)) == Some(other_schema) {
        attrs2
    } else {
        attrs1
    };
    side.choose(rng).expect("schema has attributes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MatchQuality;
    use crate::matcher::match_network;
    use smn_schema::{CatalogBuilder, InteractionGraph};

    /// Two schemas, 30 attributes each, truth = identity pairing.
    fn setup(n: usize) -> (Catalog, InteractionGraph, Vec<Correspondence>) {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", (0..n).map(|i| format!("x{i}"))).unwrap();
        b.add_schema_with_attributes("B", (0..n).map(|i| format!("y{i}"))).unwrap();
        let cat = b.build();
        let truth: Vec<Correspondence> = (0..n)
            .map(|i| {
                Correspondence::new(AttributeId::from_index(i), AttributeId::from_index(n + i))
            })
            .collect();
        (cat, InteractionGraph::complete(2), truth)
    }

    #[test]
    fn hits_precision_and_recall_targets_approximately() {
        let (cat, g, truth) = setup(60);
        let m = PerturbationMatcher::new(truth.iter().copied(), 0.67, 0.85, 11);
        let set = match_network(&m, &cat, &g).unwrap();
        let q = MatchQuality::of(&set, truth.iter().copied());
        assert!((q.precision - 0.67).abs() < 0.12, "precision {}", q.precision);
        assert!((q.recall - 0.85).abs() < 0.12, "recall {}", q.recall);
    }

    #[test]
    fn perfect_matcher_reproduces_truth() {
        let (cat, g, truth) = setup(20);
        let m = PerturbationMatcher::new(truth.iter().copied(), 1.0, 1.0, 3);
        let set = match_network(&m, &cat, &g).unwrap();
        assert_eq!(set.len(), truth.len());
        let q = MatchQuality::of(&set, truth.iter().copied());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn zero_recall_emits_nothing() {
        let (cat, g, truth) = setup(10);
        let m = PerturbationMatcher::new(truth.iter().copied(), 0.5, 0.0, 3);
        let set = match_network(&m, &cat, &g).unwrap();
        assert!(set.is_empty(), "no TPs kept → FP target is 0 as well");
    }

    #[test]
    fn deterministic_in_seed() {
        let (cat, g, truth) = setup(25);
        let m1 = PerturbationMatcher::new(truth.iter().copied(), 0.7, 0.9, 42);
        let m2 = PerturbationMatcher::new(truth.iter().copied(), 0.7, 0.9, 42);
        let s1 = match_network(&m1, &cat, &g).unwrap();
        let s2 = match_network(&m2, &cat, &g).unwrap();
        let p1: Vec<_> = s1.candidates().iter().map(|c| c.corr).collect();
        let p2: Vec<_> = s2.candidates().iter().map(|c| c.corr).collect();
        assert_eq!(p1, p2);
        // different seed → (almost surely) different set
        let m3 = PerturbationMatcher::new(truth.iter().copied(), 0.7, 0.9, 43);
        let s3 = match_network(&m3, &cat, &g).unwrap();
        let p3: Vec<_> = s3.candidates().iter().map(|c| c.corr).collect();
        assert_ne!(p1, p3);
    }

    #[test]
    fn confidences_separate_true_from_false_on_average() {
        let (cat, g, truth) = setup(60);
        let m = PerturbationMatcher::new(truth.iter().copied(), 0.6, 0.9, 5);
        let set = match_network(&m, &cat, &g).unwrap();
        let truth_set: HashSet<_> = truth.iter().copied().collect();
        let (mut ts, mut tn, mut fs, mut fn_) = (0.0, 0usize, 0.0, 0usize);
        for c in set.candidates() {
            if truth_set.contains(&c.corr) {
                ts += c.confidence;
                tn += 1;
            } else {
                fs += c.confidence;
                fn_ += 1;
            }
        }
        assert!(tn > 0 && fn_ > 0);
        assert!(ts / tn as f64 > fs / fn_ as f64, "true candidates should score higher on average");
    }

    #[test]
    #[should_panic(expected = "precision must be in (0,1]")]
    fn rejects_zero_precision() {
        let _ = PerturbationMatcher::new(std::iter::empty(), 0.0, 0.5, 1);
    }
}
