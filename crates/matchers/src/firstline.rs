//! First-line matchers: thin [`NameScorer`] wrappers around the measures in
//! [`crate::text`], so ensembles can hold them uniformly as trait objects.

use crate::matcher::NameScorer;
use crate::text;

/// Normalized Levenshtein similarity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Levenshtein;

impl NameScorer for Levenshtein {
    fn name(&self) -> &'static str {
        "levenshtein"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::levenshtein_similarity(a, b)
    }
}

/// Jaro–Winkler similarity.
#[derive(Debug, Clone, Copy, Default)]
pub struct JaroWinkler;

impl NameScorer for JaroWinkler {
    fn name(&self) -> &'static str {
        "jaro-winkler"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::jaro_winkler(a, b)
    }
}

/// q-gram Jaccard similarity with configurable `q` (default 3).
#[derive(Debug, Clone, Copy)]
pub struct QGram {
    /// Gram length.
    pub q: usize,
}

impl Default for QGram {
    fn default() -> Self {
        Self { q: 3 }
    }
}

impl NameScorer for QGram {
    fn name(&self) -> &'static str {
        "qgram"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::qgram_jaccard(a, b, self.q)
    }
}

/// q-gram Dice coefficient with configurable `q` (default 2).
#[derive(Debug, Clone, Copy)]
pub struct Dice {
    /// Gram length.
    pub q: usize,
}

impl Default for Dice {
    fn default() -> Self {
        Self { q: 2 }
    }
}

impl NameScorer for Dice {
    fn name(&self) -> &'static str {
        "dice"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::qgram_dice(a, b, self.q)
    }
}

/// Jaccard over the tokenized names.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenJaccard;

impl NameScorer for TokenJaccard {
    fn name(&self) -> &'static str {
        "token-jaccard"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::token_jaccard(a, b)
    }
}

/// Symmetrized Monge–Elkan with Jaro–Winkler inner measure.
#[derive(Debug, Clone, Copy, Default)]
pub struct MongeElkan;

impl NameScorer for MongeElkan {
    fn name(&self) -> &'static str {
        "monge-elkan"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::monge_elkan(a, b)
    }
}

/// Common-prefix ratio.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prefix;

impl NameScorer for Prefix {
    fn name(&self) -> &'static str {
        "prefix"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::prefix_similarity(a, b)
    }
}

/// Common-suffix ratio (useful for names like `billingDate` / `orderDate`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Suffix;

impl NameScorer for Suffix {
    fn name(&self) -> &'static str {
        "suffix"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        text::suffix_similarity(a, b)
    }
}

/// IDF-weighted token cosine over a fitted corpus model.
#[derive(Debug, Clone)]
pub struct IdfCosine {
    model: text::IdfModel,
}

impl IdfCosine {
    /// Fits the IDF model on a corpus of attribute names (typically all
    /// names of the catalog being matched).
    pub fn fit<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        Self { model: text::IdfModel::fit(names) }
    }
}

impl NameScorer for IdfCosine {
    fn name(&self) -> &'static str {
        "idf-cosine"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        self.model.cosine(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_scorers() -> Vec<Box<dyn NameScorer>> {
        vec![
            Box::new(Levenshtein),
            Box::new(JaroWinkler),
            Box::new(QGram::default()),
            Box::new(Dice::default()),
            Box::new(TokenJaccard),
            Box::new(MongeElkan),
            Box::new(Prefix),
            Box::new(Suffix),
            Box::new(IdfCosine::fit(["releaseDate", "screenDate", "title"])),
        ]
    }

    #[test]
    fn all_scorers_are_bounded_and_reflexive() {
        for s in all_scorers() {
            for (a, b) in [("releaseDate", "screenDate"), ("id", "identifier"), ("x", "")] {
                let v = s.score(a, b);
                assert!((0.0..=1.0).contains(&v), "{} out of bounds: {v}", s.name());
            }
            assert_eq!(s.score("releaseDate", "releaseDate"), 1.0, "{} not reflexive", s.name());
        }
    }

    #[test]
    fn scorers_are_symmetric() {
        for s in all_scorers() {
            let (a, b) = ("productionDate", "date");
            assert!((s.score(a, b) - s.score(b, a)).abs() < 1e-12, "{} not symmetric", s.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_scorers().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
