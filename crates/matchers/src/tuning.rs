//! Ensemble calibration utilities.
//!
//! The paper's experiments depend on candidate sets with a particular
//! error/violation profile (BP: 142 candidates at precision ≈ 0.67 with
//! 252 violations). This module productizes the calibration workflow:
//! sweep selection policies over a labelled network and report size,
//! precision, recall and F1 per configuration, so downstream users can
//! place an ensemble on the precision/recall/noise operating point their
//! reconciliation workload needs.

use crate::ensemble::{EnsembleMatcher, Selection};
use crate::eval::MatchQuality;
use crate::matcher::match_network;
use smn_schema::{Catalog, Correspondence, InteractionGraph};

/// One sweep configuration and its measured outcome.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The selection policy evaluated.
    pub selection: Selection,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Quality against the supplied ground truth.
    pub quality: MatchQuality,
}

impl SweepPoint {
    /// Convenience accessor: F1 of the operating point.
    pub fn f1(&self) -> f64 {
        self.quality.f1()
    }
}

/// Evaluates `make_ensemble` under every selection in `grid` against the
/// labelled network, returning one [`SweepPoint`] per configuration.
///
/// The ensemble is rebuilt per point via the factory so corpus-fitted
/// scorers (IDF) are constructed once per configuration.
pub fn sweep_selection(
    make_ensemble: impl Fn() -> EnsembleMatcher,
    grid: impl IntoIterator<Item = Selection>,
    catalog: &Catalog,
    graph: &InteractionGraph,
    truth: &[Correspondence],
) -> Vec<SweepPoint> {
    grid.into_iter()
        .map(|selection| {
            let matcher = make_ensemble().with_selection(selection);
            let set =
                match_network(&matcher, catalog, graph).expect("ensemble emits valid candidates");
            SweepPoint {
                selection,
                candidates: set.len(),
                quality: MatchQuality::of(&set, truth.iter().copied()),
            }
        })
        .collect()
}

/// Picks the sweep point whose precision is at least `min_precision` and
/// whose recall is maximal (`None` if no point qualifies) — the typical
/// "as complete as possible at acceptable cleanliness" tuning target.
pub fn best_recall_at_precision(points: &[SweepPoint], min_precision: f64) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.quality.precision >= min_precision)
        .max_by(|a, b| a.quality.recall.total_cmp(&b.quality.recall))
}

/// A default threshold × top-k grid around the calibrated presets.
pub fn default_grid() -> Vec<Selection> {
    let mut grid = Vec::new();
    for threshold in [0.35, 0.40, 0.45, 0.50, 0.55] {
        for top_k in [1usize, 2, 3] {
            grid.push(Selection { threshold, top_k, max_delta: Some(0.15) });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::coma_like;
    use smn_schema::{AttributeId, CatalogBuilder};

    fn labelled_network() -> (Catalog, InteractionGraph, Vec<Correspondence>) {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["orderDate", "customerName", "totalAmount", "shipCity"])
            .unwrap();
        b.add_schema_with_attributes(
            "B",
            ["order_date", "customer_name", "total_amount", "ship_city"],
        )
        .unwrap();
        let cat = b.build();
        let truth: Vec<Correspondence> =
            (0..4).map(|i| Correspondence::new(AttributeId(i), AttributeId(4 + i))).collect();
        (cat, InteractionGraph::complete(2), truth)
    }

    #[test]
    fn sweep_reports_monotone_candidate_counts() {
        let (cat, g, truth) = labelled_network();
        let grid = [
            Selection { threshold: 0.3, top_k: 3, max_delta: None },
            Selection { threshold: 0.6, top_k: 3, max_delta: None },
            Selection { threshold: 0.9, top_k: 3, max_delta: None },
        ];
        let points = sweep_selection(coma_like, grid, &cat, &g, &truth);
        assert_eq!(points.len(), 3);
        assert!(points[0].candidates >= points[1].candidates);
        assert!(points[1].candidates >= points[2].candidates);
    }

    #[test]
    fn identical_naming_reaches_perfect_quality() {
        let (cat, g, truth) = labelled_network();
        let grid = [Selection { threshold: 0.7, top_k: 1, max_delta: None }];
        let points = sweep_selection(coma_like, grid, &cat, &g, &truth);
        assert_eq!(points[0].quality.precision, 1.0);
        assert_eq!(points[0].quality.recall, 1.0);
        assert_eq!(points[0].f1(), 1.0);
    }

    #[test]
    fn best_recall_at_precision_filters() {
        let (cat, g, truth) = labelled_network();
        let points = sweep_selection(coma_like, default_grid(), &cat, &g, &truth);
        let best = best_recall_at_precision(&points, 0.9).expect("a clean point exists");
        assert!(best.quality.precision >= 0.9);
        // impossible bar yields None
        assert!(best_recall_at_precision(&points, 1.1).is_none());
    }

    #[test]
    fn default_grid_covers_thresholds_and_ks() {
        let grid = default_grid();
        assert_eq!(grid.len(), 15);
        assert!(grid.iter().any(|s| s.top_k == 1));
        assert!(grid.iter().any(|s| s.threshold >= 0.55));
    }
}
