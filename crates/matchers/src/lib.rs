//! # smn-matchers
//!
//! First-party schema matchers, built from scratch because the matchers used
//! in the paper's evaluation — COMA++ (ref. 13) and AMC (ref. 35) — are closed-source
//! Java systems with no Rust equivalent.
//!
//! The crate follows the classical matcher architecture those systems share:
//!
//! 1. **First-line matchers** ([`firstline`]) score attribute-name pairs with
//!    one string-similarity measure each ([`text`]: Levenshtein,
//!    Jaro–Winkler, q-grams, token overlap, TF-IDF cosine, Monge–Elkan,
//!    prefix/suffix).
//! 2. **Ensembles** ([`ensemble`]) aggregate several first-line score
//!    matrices (average, weighted, max, …) and apply a *selection* policy
//!    (threshold, top-k per attribute) to produce candidate correspondences
//!    with confidence values. Presets [`ensemble::coma_like`] and
//!    [`ensemble::amc_like`] mimic the two tools' output character (COMA:
//!    conservative composite average; AMC: aggressive max-combination —
//!    slightly noisier, matching the violation profile of Table III).
//! 3. **Synthetic matchers** ([`synthetic`]) generate candidates by
//!    perturbing a known ground truth at exact target precision/recall —
//!    used for controlled experiments.
//!
//! Matchers only see pairs of schemas (the paper: "schema matchers only take
//! two schemas as input"), so their network-level output routinely violates
//! the network constraints — which is precisely the uncertainty that
//! `smn-core` quantifies and reconciles.

pub mod ensemble;
pub mod eval;
pub mod firstline;
pub mod matcher;
pub mod synthetic;
pub mod text;
pub mod tuning;

pub use ensemble::{Aggregation, EnsembleMatcher, Selection};
pub use eval::MatchQuality;
pub use matcher::{NameScorer, PairMatcher, ScoredPair};
pub use synthetic::PerturbationMatcher;
