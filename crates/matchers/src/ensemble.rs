//! Matcher ensembles: aggregate several first-line score matrices and apply
//! a selection policy, in the style of COMA++ and AMC.
//!
//! The two presets, [`coma_like`] and [`amc_like`], replace the two
//! closed-source tools of the paper's evaluation. They differ exactly where
//! the originals do:
//!
//! * **COMA-like** — a *composite* matcher: weighted average of edit-based
//!   and token-based measures with a moderate threshold and top-2 selection
//!   per attribute. Conservative, fewer but cleaner candidates.
//! * **AMC-like** — a corpus-aware *process* matcher: the average over a
//!   different, token-oriented measure pool (IDF cosine fitted on the
//!   catalog, Monge–Elkan, Dice) with a lower threshold and top-3
//!   selection. More aggressive — more candidates and more constraint
//!   violations, mirroring the COMA/AMC relationship visible in Table III
//!   of the paper.

use crate::firstline;
use crate::matcher::{NameScorer, PairMatcher, ScoredPair};
use smn_schema::{Catalog, SchemaId};

/// How per-measure scores for one attribute pair are combined.
#[derive(Debug, Clone)]
pub enum Aggregation {
    /// Arithmetic mean of all measures.
    Average,
    /// Weighted mean; weights must match the number of scorers.
    Weighted(Vec<f64>),
    /// Maximum over all measures (optimistic, AMC-style).
    Max,
    /// Minimum over all measures (pessimistic).
    Min,
}

impl Aggregation {
    fn combine(&self, scores: &[f64]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        match self {
            Aggregation::Average => scores.iter().sum::<f64>() / scores.len() as f64,
            Aggregation::Weighted(w) => {
                assert_eq!(w.len(), scores.len(), "weight/scorer arity mismatch");
                let total: f64 = w.iter().sum();
                scores.iter().zip(w).map(|(s, w)| s * w).sum::<f64>() / total
            }
            Aggregation::Max => scores.iter().copied().fold(0.0, f64::max),
            Aggregation::Min => scores.iter().copied().fold(1.0, f64::min),
        }
    }
}

/// Which aggregated pairs become candidates.
#[derive(Debug, Clone, Copy)]
pub struct Selection {
    /// Minimum aggregated score.
    pub threshold: f64,
    /// At most this many candidates per attribute *per direction*
    /// (`usize::MAX` disables the cap). Real matchers emit small top-k
    /// lists; k > 1 is the source of one-to-one violations.
    pub top_k: usize,
    /// COMA-style *MaxDelta* selection: runners-up are kept only if they
    /// score within `delta` of the attribute's best candidate. `None`
    /// disables the criterion. Close runners-up are the "hard confusions"
    /// that create constraint violations without flooding the candidate
    /// set with junk.
    pub max_delta: Option<f64>,
}

impl Default for Selection {
    fn default() -> Self {
        Self { threshold: 0.5, top_k: 2, max_delta: None }
    }
}

/// An ensemble of first-line matchers with an aggregation and a selection
/// policy.
pub struct EnsembleMatcher {
    name: String,
    scorers: Vec<Box<dyn NameScorer>>,
    aggregation: Aggregation,
    selection: Selection,
}

impl EnsembleMatcher {
    /// Creates an ensemble from parts.
    pub fn new(
        name: impl Into<String>,
        scorers: Vec<Box<dyn NameScorer>>,
        aggregation: Aggregation,
        selection: Selection,
    ) -> Self {
        assert!(!scorers.is_empty(), "ensemble needs at least one scorer");
        if let Aggregation::Weighted(w) = &aggregation {
            assert_eq!(w.len(), scorers.len(), "weight/scorer arity mismatch");
        }
        Self { name: name.into(), scorers, aggregation, selection }
    }

    /// Aggregated similarity of two names.
    ///
    /// Names are canonicalized first (tokenized and re-joined with spaces,
    /// lowercase), so `releaseDate`, `release_date` and `RELEASE DATE` all
    /// score as `release date`. Real matchers normalize the same way before
    /// scoring.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        let canon = |s: &str| {
            let toks = crate::text::tokenize(s);
            if toks.is_empty() {
                s.to_lowercase()
            } else {
                toks.join(" ")
            }
        };
        let (a, b) = (canon(a), canon(b));
        let scores: Vec<f64> = self.scorers.iter().map(|s| s.score(&a, &b)).collect();
        // floating-point dot products can overshoot 1.0 by an ulp
        self.aggregation.combine(&scores).clamp(0.0, 1.0)
    }

    /// The selection policy.
    pub fn selection(&self) -> Selection {
        self.selection
    }

    /// Returns the ensemble with a different selection policy (builder
    /// style; used for calibration sweeps and ablations).
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }
}

impl PairMatcher for EnsembleMatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn match_pair(&self, catalog: &Catalog, s1: SchemaId, s2: SchemaId) -> Vec<ScoredPair> {
        let attrs1 = &catalog.schema(s1).attributes;
        let attrs2 = &catalog.schema(s2).attributes;
        // full score matrix above threshold
        let mut scored: Vec<ScoredPair> = Vec::new();
        for &a in attrs1 {
            let an = &catalog.attribute(a).name;
            for &b in attrs2 {
                let bn = &catalog.attribute(b).name;
                let s = self.score(an, bn);
                if s >= self.selection.threshold {
                    scored.push(ScoredPair { source: a, target: b, score: s });
                }
            }
        }
        if self.selection.top_k == usize::MAX && self.selection.max_delta.is_none() {
            return scored;
        }
        // top-k (optionally MaxDelta-limited) per attribute in each
        // direction: keep a pair iff it survives at *both* endpoints
        // (standard matcher pruning)
        let top_k = self.selection.top_k;
        let max_delta = self.selection.max_delta;
        let keep = move |pairs: &[ScoredPair], key: fn(&ScoredPair) -> u32| {
            let mut by_attr: std::collections::HashMap<u32, Vec<(f64, usize)>> =
                std::collections::HashMap::new();
            for (i, p) in pairs.iter().enumerate() {
                by_attr.entry(key(p)).or_default().push((p.score, i));
            }
            let mut kept = vec![false; pairs.len()];
            for (_, mut list) in by_attr {
                list.sort_by(|a, b| b.0.total_cmp(&a.0));
                let best = list.first().map(|&(s, _)| s).unwrap_or(0.0);
                for &(s, i) in list.iter().take(top_k) {
                    if max_delta.is_none_or(|d| s >= best - d) {
                        kept[i] = true;
                    }
                }
            }
            kept
        };
        let keep_src = keep(&scored, |p| p.source.0);
        let keep_tgt = keep(&scored, |p| p.target.0);
        scored
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| (keep_src[i] && keep_tgt[i]).then_some(p))
            .collect()
    }
}

/// COMA-like composite ensemble (see module docs).
pub fn coma_like() -> EnsembleMatcher {
    EnsembleMatcher::new(
        "coma-like",
        vec![
            Box::new(firstline::Levenshtein),
            Box::new(firstline::JaroWinkler),
            Box::new(firstline::QGram::default()),
            Box::new(firstline::TokenJaccard),
        ],
        Aggregation::Weighted(vec![1.0, 1.0, 1.0, 1.5]),
        Selection { threshold: 0.45, top_k: 3, max_delta: Some(0.20) },
    )
}

/// AMC-like corpus-aware ensemble fitted on `catalog` (see module docs).
///
/// Needs the catalog to fit the IDF model, mirroring AMC's corpus-aware
/// process pipeline.
pub fn amc_like(catalog: &Catalog) -> EnsembleMatcher {
    let idf = firstline::IdfCosine::fit(catalog.attributes().iter().map(|a| a.name.as_str()));
    EnsembleMatcher::new(
        "amc-like",
        vec![Box::new(idf), Box::new(firstline::MongeElkan), Box::new(firstline::Dice::default())],
        Aggregation::Average,
        Selection { threshold: 0.50, top_k: 3, max_delta: Some(0.10) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_network;
    use smn_schema::{CatalogBuilder, InteractionGraph};

    fn video_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("EoverI", ["productionDate", "movieTitle"]).unwrap();
        b.add_schema_with_attributes("BBC", ["date", "title"]).unwrap();
        b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate", "name"]).unwrap();
        b.build()
    }

    #[test]
    fn aggregation_combinators() {
        let s = [0.2, 0.4, 0.9];
        assert!((Aggregation::Average.combine(&s) - 0.5).abs() < 1e-12);
        assert_eq!(Aggregation::Max.combine(&s), 0.9);
        assert_eq!(Aggregation::Min.combine(&s), 0.2);
        let w = Aggregation::Weighted(vec![0.0, 0.0, 1.0]).combine(&s);
        assert!((w - 0.9).abs() < 1e-12);
        assert_eq!(Aggregation::Average.combine(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn weighted_arity_checked() {
        EnsembleMatcher::new(
            "bad",
            vec![Box::new(firstline::Levenshtein)],
            Aggregation::Weighted(vec![1.0, 2.0]),
            Selection::default(),
        );
    }

    #[test]
    fn coma_like_finds_date_correspondences() {
        let cat = video_catalog();
        // the preset threshold is calibrated for the BP-scale datasets; on
        // this tiny catalog we lower it to observe the confusion behaviour
        let m = coma_like().with_selection(Selection {
            threshold: 0.35,
            top_k: 2,
            max_delta: Some(0.10),
        });
        let g = InteractionGraph::complete(3);
        let set = match_network(&m, &cat, &g).unwrap();
        assert!(!set.is_empty());
        // releaseDate–screenDate style confusions should be present: the
        // matcher sees only names, so "…Date" attributes attract each other.
        let date_pairs = set
            .candidates()
            .iter()
            .filter(|c| {
                let an = &cat.attribute(c.corr.a()).name;
                let bn = &cat.attribute(c.corr.b()).name;
                an.to_lowercase().contains("date") && bn.to_lowercase().contains("date")
            })
            .count();
        assert!(date_pairs >= 2, "expected several date-ish candidates, got {date_pairs}");
    }

    #[test]
    fn amc_like_is_more_aggressive_than_coma_like() {
        let cat = video_catalog();
        let g = InteractionGraph::complete(3);
        let coma = match_network(&coma_like(), &cat, &g).unwrap();
        let amc = match_network(&amc_like(&cat), &cat, &g).unwrap();
        assert!(
            amc.len() >= coma.len(),
            "amc-like ({}) should not produce fewer candidates than coma-like ({})",
            amc.len(),
            coma.len()
        );
    }

    #[test]
    fn top_k_caps_per_attribute_fanout() {
        let mut b = CatalogBuilder::new();
        // one source attribute vs many near-identical targets
        b.add_schema_with_attributes("A", ["orderDate"]).unwrap();
        b.add_schema_with_attributes(
            "B",
            ["orderDate1", "orderDate2", "orderDate3", "orderDate4", "orderDate5"],
        )
        .unwrap();
        let cat = b.build();
        let m = EnsembleMatcher::new(
            "test",
            vec![Box::new(firstline::Levenshtein)],
            Aggregation::Average,
            Selection { threshold: 0.1, top_k: 2, max_delta: None },
        );
        let pairs = m.match_pair(&cat, SchemaId(0), SchemaId(1));
        assert_eq!(pairs.len(), 2, "top-2 per source attribute");
    }

    #[test]
    fn threshold_filters_everything_when_high() {
        let cat = video_catalog();
        let m = EnsembleMatcher::new(
            "strict",
            vec![Box::new(firstline::Levenshtein)],
            Aggregation::Average,
            Selection { threshold: 0.999, top_k: usize::MAX, max_delta: None },
        );
        let pairs = m.match_pair(&cat, SchemaId(0), SchemaId(1));
        assert!(pairs.is_empty());
    }

    #[test]
    fn scores_are_valid_confidences() {
        let cat = video_catalog();
        let g = InteractionGraph::complete(3);
        for set in [
            match_network(&coma_like(), &cat, &g).unwrap(),
            match_network(&amc_like(&cat), &cat, &g).unwrap(),
        ] {
            for c in set.candidates() {
                assert!((0.0..=1.0).contains(&c.confidence));
            }
        }
    }
}
