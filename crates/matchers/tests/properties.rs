//! Property-based tests for the string measures and matchers.

use proptest::prelude::*;
use smn_matchers::text;

/// Arbitrary attribute-like names: alphanumeric with occasional separators.
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_ -]{0,24}").expect("valid regex")
}

proptest! {
    /// Every character-level measure is bounded, symmetric and reflexive.
    #[test]
    fn measures_are_bounded_symmetric_reflexive(a in name_strategy(), b in name_strategy()) {
        let measures: [(&str, fn(&str, &str) -> f64); 4] = [
            ("levenshtein", text::levenshtein_similarity),
            ("jaro-winkler", text::jaro_winkler),
            ("token-jaccard", text::token_jaccard),
            ("monge-elkan", text::monge_elkan),
        ];
        for (name, m) in measures {
            let ab = m(&a, &b);
            let ba = m(&b, &a);
            prop_assert!((0.0..=1.0).contains(&ab), "{name}({a:?},{b:?}) = {ab}");
            prop_assert!((ab - ba).abs() < 1e-9, "{name} asymmetric on ({a:?},{b:?})");
            let aa = m(&a, &a);
            prop_assert!((aa - 1.0).abs() < 1e-9, "{name} not reflexive on {a:?}");
        }
        for q in [2usize, 3] {
            let ab = text::qgram_jaccard(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((ab - text::qgram_jaccard(&b, &a, q)).abs() < 1e-9);
            prop_assert!((text::qgram_jaccard(&a, &a, q) - 1.0).abs() < 1e-9);
        }
    }

    /// Levenshtein distance is a metric: identity, symmetry, triangle
    /// inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in name_strategy(),
        b in name_strategy(),
        c in name_strategy(),
    ) {
        let d = text::levenshtein_distance;
        prop_assert_eq!(d(&a, &a), 0);
        prop_assert_eq!(d(&a, &b), d(&b, &a));
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c), "triangle violated");
        // distance bounded by the longer string
        prop_assert!(d(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    /// Tokenization is idempotent under re-joining: tokens of the joined
    /// lowercase form equal the original tokens.
    #[test]
    fn tokenize_is_stable(a in name_strategy()) {
        let once = text::tokenize(&a);
        let rejoined = once.join(" ");
        let twice = text::tokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    /// Jaro–Winkler dominates Jaro and both stay in bounds.
    #[test]
    fn winkler_dominates_jaro(a in name_strategy(), b in name_strategy()) {
        let j = text::jaro(&a, &b);
        let jw = text::jaro_winkler(&a, &b);
        prop_assert!(jw >= j - 1e-12);
        prop_assert!(jw <= 1.0 + 1e-12);
    }

    /// IDF model: fitted weights are non-negative and cosine stays bounded
    /// on arbitrary inputs.
    #[test]
    fn idf_cosine_bounds(corpus in prop::collection::vec(name_strategy(), 1..12), a in name_strategy(), b in name_strategy()) {
        let model = text::IdfModel::fit(corpus.iter().map(String::as_str));
        let s = model.cosine(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "cosine {s}");
        for t in text::tokenize(&a) {
            prop_assert!(model.idf(&t) >= 0.0);
        }
    }
}

mod perturbation {
    use proptest::prelude::*;
    use smn_matchers::matcher::match_network;
    use smn_matchers::{MatchQuality, PerturbationMatcher};
    use smn_schema::{AttributeId, CatalogBuilder, Correspondence, InteractionGraph};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The perturbation matcher's output quality tracks its targets on
        /// reasonably sized networks.
        #[test]
        fn targets_are_tracked(
            seed in 0u64..1000,
            precision in 0.4f64..0.95,
            recall in 0.5f64..0.95,
        ) {
            let m = 40usize;
            let mut b = CatalogBuilder::new();
            b.add_schema_with_attributes("A", (0..m).map(|i| format!("x{i}"))).unwrap();
            b.add_schema_with_attributes("B", (0..m).map(|i| format!("y{i}"))).unwrap();
            let cat = b.build();
            let truth: Vec<Correspondence> = (0..m)
                .map(|i| Correspondence::new(AttributeId::from_index(i), AttributeId::from_index(m + i)))
                .collect();
            let matcher = PerturbationMatcher::new(truth.iter().copied(), precision, recall, seed);
            let set = match_network(&matcher, &cat, &InteractionGraph::complete(2)).unwrap();
            let q = MatchQuality::of(&set, truth.iter().copied());
            prop_assert!((q.recall - recall).abs() < 0.2, "recall {} target {recall}", q.recall);
            if q.recall > 0.0 {
                prop_assert!((q.precision - precision).abs() < 0.2, "precision {} target {precision}", q.precision);
            }
            // every emitted confidence is a valid probability
            for c in set.candidates() {
                prop_assert!((0.0..=1.0).contains(&c.confidence));
            }
        }
    }
}
