//! Hot-path micro-measurements behind `BENCH_hotpaths.json`.
//!
//! Per expert question, Algorithm 1 pays for three inner loops: the
//! Algorithm 3 sampling fill, the batch information-gain selection, and
//! the per-assertion view-maintenance + probability recomputation. This
//! module times exactly those on three calibrated network sizes so the
//! perf trajectory of the hot paths is recorded run over run:
//!
//! * `sampling_fill_ms` — a 50-emission Algorithm 3 fill
//!   ([`SampleStore::new`]), the "sampling-emission" bench;
//! * `information_gains_ms` — one batch
//!   [`information_gains`](ProbabilisticNetwork::information_gains) over
//!   every uncertain candidate (the Algorithm 1 selection step);
//! * `assert_candidate_ms` — one
//!   [`assert_candidate`](ProbabilisticNetwork::assert_candidate)
//!   (view maintenance + recompute) on a cloned network.
//!
//! [`measure_point`] fills the store twice and fingerprints the distinct
//! instance sets, so the emitted JSON also certifies that sampling is
//! bit-deterministic for a fixed seed. The `bench_hotpaths` binary prints
//! the numbers and writes `results/hotpaths_<label>.json`; the criterion
//! wrapper in `benches/hotpaths.rs` reuses the same setups.

use crate::{matched_network, MatcherKind};
use serde::Serialize;
use smn_constraints::BitSet;
use smn_core::feedback::{Assertion, Feedback};
use smn_core::sampling::{SampleStore, SamplerConfig};
use smn_core::{MatchingNetwork, ProbabilisticNetwork};
use smn_datasets::{DatasetSpec, SharingModel, Vocabulary};
use smn_schema::CandidateId;
use std::time::Instant;

/// The three bench sizes as (schemas, attributes per schema). The two
/// smaller entries match `benches/sampling.rs` so numbers stay comparable
/// across PRs; the largest pushes `|C|` towards the four-digit regime the
/// ROADMAP targets.
pub const SIZES: [(usize, usize); 3] = [(4, 40), (6, 60), (8, 90)];

/// Builds the standard bench network for a size entry.
pub fn bench_network(schemas: usize, attrs: usize, seed: u64) -> MatchingNetwork {
    let d = DatasetSpec {
        name: "bench".into(),
        vocabulary: Vocabulary::business_partner(),
        schema_count: schemas,
        attrs_min: attrs,
        attrs_max: attrs,
        sharing: SharingModel::RankBiased { alpha: 0.6 },
    }
    .generate(seed);
    let g = d.complete_graph();
    matched_network(&d, &g, MatcherKind::perturbation(seed)).0
}

/// Sampler configuration of the emission bench: one 50-emission pass.
pub fn emission_config() -> SamplerConfig {
    SamplerConfig { n_samples: 50, walk_steps: 4, n_min: 1, seed: 3, anneal: true, chains: 1 }
}

/// Sampler configuration backing the gain/assertion measurements.
pub fn store_config() -> SamplerConfig {
    SamplerConfig { n_samples: 400, walk_steps: 4, n_min: 150, seed: 3, anneal: true, chains: 1 }
}

/// One measured size point.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathPoint {
    /// Schemas in the generated network.
    pub schemas: usize,
    /// Attributes per schema.
    pub attrs: usize,
    /// Resulting candidate-set size `|C|`.
    pub candidates: usize,
    /// Distinct samples in the measurement store.
    pub distinct_samples: usize,
    /// Whether two independent fills with the same seed produced
    /// bit-identical distinct-instance sets.
    pub deterministic: bool,
    /// Order-independent hash of the distinct-instance set.
    pub fingerprint: u64,
    /// Milliseconds for one 50-emission sampling fill (min over iters).
    pub sampling_fill_ms: f64,
    /// Milliseconds for one batch `information_gains` over all uncertain
    /// candidates (min over iters).
    pub information_gains_ms: f64,
    /// Milliseconds for one `assert_candidate` on a cloned network
    /// (min over iters).
    pub assert_candidate_ms: f64,
}

/// Order-independent fingerprint of a distinct-instance set.
pub fn fingerprint(samples: &[BitSet]) -> u64 {
    let mut acc = 0u64;
    for s in samples {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in s.words() {
            h ^= w;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        acc ^= h; // xor: insensitive to discovery order
    }
    acc
}

fn min_ms(iters: usize, mut f: impl FnMut() -> ()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one size point; `iters` timing repetitions per quantity.
pub fn measure_point(schemas: usize, attrs: usize, iters: usize) -> HotpathPoint {
    let net = bench_network(schemas, attrs, 7);
    let n = net.candidate_count();
    let empty = Feedback::new(n);

    // determinism: two independent fills must agree bit-for-bit
    let fill_a = SampleStore::new(&net, &empty, emission_config());
    let fill_b = SampleStore::new(&net, &empty, emission_config());
    let fp = fingerprint(fill_a.samples());
    let deterministic = fp == fingerprint(fill_b.samples());

    let sampling_fill_ms =
        min_ms(iters, || drop(SampleStore::new(&net, &empty, emission_config())));

    let pn = ProbabilisticNetwork::new(net, store_config());
    let pool = pn.uncertain_candidates();
    let information_gains_ms = min_ms(iters, || drop(pn.information_gains(&pool)));

    let probe = (0..n)
        .map(CandidateId::from_index)
        .find(|&c| {
            let p = pn.probability(c);
            p > 0.0 && p < 1.0
        })
        .expect("bench network has uncertain candidates");
    // the clone is setup, not measured work: time only the call itself
    let assert_candidate_ms = {
        let mut best = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let mut fresh = pn.clone();
            let start = Instant::now();
            fresh.assert_candidate(Assertion { candidate: probe, approved: true }).unwrap();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };

    HotpathPoint {
        schemas,
        attrs,
        candidates: n,
        distinct_samples: pn.samples().len(),
        deterministic,
        fingerprint: fp,
        sampling_fill_ms,
        information_gains_ms,
        assert_candidate_ms,
    }
}

/// Measures all [`SIZES`].
pub fn measure(iters: usize) -> Vec<HotpathPoint> {
    SIZES.iter().map(|&(s, a)| measure_point(s, a, iters)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_point_is_deterministic_and_positive() {
        let p = measure_point(SIZES[0].0, SIZES[0].1, 1);
        assert!(p.deterministic, "same seed must reproduce the distinct-instance set");
        assert!(p.candidates > 0 && p.distinct_samples > 0);
        assert!(p.sampling_fill_ms > 0.0);
        assert!(p.information_gains_ms >= 0.0);
        assert!(p.assert_candidate_ms > 0.0);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = BitSet::from_ids(10, [CandidateId(1), CandidateId(5)]);
        let b = BitSet::from_ids(10, [CandidateId(2)]);
        let fwd = fingerprint(&[a.clone(), b.clone()]);
        let rev = fingerprint(&[b, a]);
        assert_eq!(fwd, rev);
    }
}
