//! Fork/commit and multi-worker service measurements behind
//! `BENCH_service.json`.
//!
//! Two question sets, both on the federation scenario of the `sharding`
//! module:
//!
//! * **Snapshot costs** ([`measure_forking`]) — what the copy-on-write
//!   refactor prices each primitive at, per federation size:
//!   `fork_us` (must stay flat in the store size — `O(#shards)` pointer
//!   copies, no sample-matrix copy), `first_assert_cow_ms` (a commit on a
//!   freshly forked network: pays the one-shard copy), `owned_assert_ms`
//!   (a commit on an unshared network: the PR-2/PR-3 hot path, which must
//!   not regress — compare `BENCH_sharding.json`), and `what_if_us` (the
//!   exact what-if = fork + assert + entropy).
//! * **Service throughput** ([`measure_throughput`]) — aggregate
//!   questions per second of the full dispatch → evaluate → aggregate →
//!   commit pipeline at 1→8 workers (OS threads = workers) on the
//!   24-cluster federation. The JSON stores `questions` and `elapsed_ms`
//!   (derive `questions / (elapsed_ms / 1000)`), so the determinism smoke
//!   can scrub wall-clock and still compare everything else byte for
//!   byte.

use crate::sharding::{bench_sampler, bench_sharding, federation_network, owned_probe};
use serde::Serialize;
use smn_core::feedback::Assertion;
use smn_core::{ProbabilisticNetwork, ReconciliationGoal};
use smn_service::{Aggregation, ReconciliationService, ServiceConfig};
use std::time::Instant;

/// Federation sizes for the snapshot-cost points.
pub const FORK_GROUPS: [usize; 3] = [4, 12, 24];

/// Worker counts for the throughput scan.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One snapshot-cost point.
#[derive(Debug, Clone, Serialize)]
pub struct ForkPoint {
    /// Fused sub-networks.
    pub groups: usize,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Shard count of the sharded representation.
    pub shards: usize,
    /// Distinct stored samples (what a deep copy would have to duplicate).
    pub distinct_samples: usize,
    /// Microseconds per sharded `fork()` (min over iters).
    pub sharded_fork_us: f64,
    /// Microseconds per monolithic `fork()` (min over iters).
    pub monolithic_fork_us: f64,
    /// Milliseconds for the first assertion on a fresh sharded fork (pays
    /// the one-shard copy-on-write).
    pub sharded_first_assert_cow_ms: f64,
    /// Milliseconds for the first assertion on a fresh monolithic fork
    /// (pays the whole-store copy-on-write).
    pub monolithic_first_assert_cow_ms: f64,
    /// Milliseconds per assertion on an *unshared* sharded network — the
    /// PR-3 hot path, must not regress.
    pub sharded_owned_assert_ms: f64,
    /// Milliseconds per assertion on an *unshared* monolithic network —
    /// the PR-2 hot path, must not regress.
    pub monolithic_owned_assert_ms: f64,
    /// Microseconds per exact `what_if` on the sharded network.
    pub sharded_what_if_us: f64,
}

/// One throughput point.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputPoint {
    /// Workers (= OS threads) driving the service.
    pub workers: usize,
    /// Redundancy `k`.
    pub redundancy: usize,
    /// Commits executed (the budget).
    pub commits: usize,
    /// Worker answers collected (deterministic).
    pub questions: u64,
    /// Final entropy after the run (deterministic).
    pub final_entropy: f64,
    /// Wall-clock of the run (min over iters).
    pub elapsed_ms: f64,
}

/// The full `BENCH_service.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBench {
    /// Snapshot-cost points per federation size.
    pub forking: Vec<ForkPoint>,
    /// Throughput points at 1→8 workers on the 24-cluster federation.
    pub throughput: Vec<ThroughputPoint>,
}

fn min_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Measures the snapshot-cost points.
pub fn measure_forking(iters: usize) -> Vec<ForkPoint> {
    FORK_GROUPS
        .iter()
        .map(|&groups| {
            let net = federation_network(groups, 7);
            let sampler = bench_sampler(3);
            let mono = ProbabilisticNetwork::new(net.clone(), sampler);
            let sharded = ProbabilisticNetwork::new_sharded(net.clone(), sampler, bench_sharding());

            let sharded_fork_us = min_us(iters * 50, || drop(sharded.fork()));
            let monolithic_fork_us = min_us(iters * 50, || drop(mono.fork()));

            let (warm, probe) = owned_probe(&sharded);
            // first-assert-on-a-fork: the timer must exclude the fork
            let first_cow_ms = |pn: &ProbabilisticNetwork| {
                let mut best = f64::INFINITY;
                for _ in 0..iters.max(1) {
                    let mut fresh = pn.fork();
                    let start = Instant::now();
                    fresh.assert_candidate(Assertion { candidate: probe, approved: true }).unwrap();
                    best = best.min(start.elapsed().as_secs_f64() * 1e3);
                }
                best
            };
            let sharded_first_assert_cow_ms = first_cow_ms(&sharded);
            let monolithic_first_assert_cow_ms = first_cow_ms(&mono);

            // owned path: fork, unshare the probe's shard with a warm-up
            // assertion on a same-shard neighbour, then time the probe
            let owned_ms = |pn: &ProbabilisticNetwork| {
                let mut best = f64::INFINITY;
                for _ in 0..iters.max(1) {
                    let mut fresh = pn.fork();
                    fresh.assert_candidate(Assertion { candidate: warm, approved: false }).unwrap();
                    let start = Instant::now();
                    fresh.assert_candidate(Assertion { candidate: probe, approved: true }).unwrap();
                    best = best.min(start.elapsed().as_secs_f64() * 1e3);
                }
                best
            };
            let sharded_owned_assert_ms = owned_ms(&sharded);
            let monolithic_owned_assert_ms = owned_ms(&mono);

            let sharded_what_if_us = min_us(iters * 10, || {
                std::hint::black_box(sharded.what_if(probe, true));
            });

            ForkPoint {
                groups,
                candidates: net.candidate_count(),
                shards: sharded.shard_count(),
                distinct_samples: sharded.distinct_sample_count(),
                sharded_fork_us,
                monolithic_fork_us,
                sharded_first_assert_cow_ms,
                monolithic_first_assert_cow_ms,
                sharded_owned_assert_ms,
                monolithic_owned_assert_ms,
                sharded_what_if_us,
            }
        })
        .collect()
}

/// Measures service throughput at each worker count on the 24-cluster
/// federation (`iters` wall-clock repetitions, minimum kept): the full
/// crowd votes on every lease (`k = W`), so doubling the workers doubles
/// the questions answered per committed assertion — the workload whose
/// wall-clock the scoped thread pool must hold flat.
pub fn measure_throughput(iters: usize) -> Vec<ThroughputPoint> {
    let (net, fed_truth) = crate::sharding::federation_case(24, 7);
    WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let config = ServiceConfig {
                sampler: bench_sampler(3),
                sharding: bench_sharding(),
                redundancy: workers,
                aggregation: Aggregation::QualityWeighted,
                threads: workers,
                scheduler: smn_service::Scheduler::Pool,
                seed: 17,
                goal: ReconciliationGoal::Budget(48),
            };
            let mut questions = 0u64;
            let mut commits = 0usize;
            let mut final_entropy = 0.0;
            let mut best = f64::INFINITY;
            for _ in 0..iters.max(1) {
                let mut svc = ReconciliationService::new(
                    net.clone(),
                    fed_truth.clone(),
                    vec![0.1; workers],
                    config,
                );
                let start = Instant::now();
                let report = svc.run();
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
                questions = report.questions_asked;
                commits = report.commits.len();
                final_entropy = report.final_entropy;
            }
            ThroughputPoint {
                workers,
                redundancy: workers,
                commits,
                questions,
                final_entropy,
                elapsed_ms: best,
            }
        })
        .collect()
}

/// Runs both measurement sets.
pub fn measure(iters: usize) -> ServiceBench {
    ServiceBench { forking: measure_forking(iters), throughput: measure_throughput(iters) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_cost_is_flat_while_stores_grow() {
        let points = measure_forking(1);
        assert_eq!(points.len(), FORK_GROUPS.len());
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(
            last.distinct_samples > first.distinct_samples,
            "federation growth must grow the stores"
        );
        // O(#shards) pointer copies: the 6× larger store must not make the
        // fork anywhere near 6× slower (allow generous jitter)
        assert!(
            last.sharded_fork_us < first.sharded_fork_us * 20.0 + 50.0,
            "sharded fork cost exploded: {} -> {} us",
            first.sharded_fork_us,
            last.sharded_fork_us
        );
        for p in &points {
            assert!(p.sharded_fork_us < 1_000.0, "a fork must stay in microseconds");
            assert!(p.sharded_owned_assert_ms > 0.0);
            assert!(p.monolithic_owned_assert_ms > 0.0);
        }
    }

    #[test]
    fn throughput_points_are_deterministic_in_content() {
        let a = measure_throughput(1);
        let b = measure_throughput(1);
        assert_eq!(a.len(), WORKER_COUNTS.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.questions, y.questions);
            assert_eq!(x.commits, y.commits);
            assert_eq!(x.final_entropy, y.final_entropy);
        }
    }
}
