//! Multi-process shard-server scaling behind `BENCH_dist.json`.
//!
//! The scenario is the sharding bench's webform federation grown an
//! order of magnitude past its largest point (240 fused clusters vs 24):
//! thousands of candidates in hundreds of independent conflict
//! components — the regime where components can spread over shard-server
//! processes. For 1, 2 and 4 servers this module measures, over real
//! `TcpTransport` links to child processes (or any transports the caller
//! supplies — the tests use in-process channels):
//!
//! * `bootstrap_ms` — shipping the structure image and building every
//!   owned shard across the cluster;
//! * `assert_ms` — one routed `assert_candidate` round trip;
//! * `gains_ms` — one batched `information_gains` over the uncertain
//!   pool, fanned out per server;
//! * `what_if_ms` — one batched what-if over the pool (both verdicts).
//!
//! Alongside the timings each point certifies `bit_identical`: the
//! distributed posterior — at bootstrap and again after the timed
//! commits — equals the single-process network's bitwise. Timing keys
//! are `SMN_SCRUB_TIMINGS`-scrubbables, so the CI determinism smoke can
//! require two identically-seeded multi-process runs to emit
//! byte-identical JSON.
//!
//! On a single-core box the curves are necessarily flat — the servers
//! time-slice one CPU, so the bench certifies the protocol's overhead
//! envelope (and bit-identity) rather than a speedup; on a multi-core
//! host the per-server fan-out runs genuinely concurrently.

use crate::sharding::{bench_sampler, federation_network};
use serde::Serialize;
use smn_core::feedback::Assertion;
use smn_core::{MatchingNetwork, ProbabilisticNetwork};
use smn_dist::{serve, DistNetwork, TcpTransport, Transport};
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// Shard-server counts measured.
pub const SERVERS: [usize; 3] = [1, 2, 4];

/// Federation size: ~10× past the sharding bench's largest point (24).
pub const GROUPS: usize = 240;

/// Seed of the federation and the sampler (shared with the reference).
pub const SEED: u64 = 7;

/// Sharded configuration of the scaling bench: every component through
/// the sampler (`exact_threshold: 0`). The exact-enumeration shards of
/// the default configuration are so cheap that every operation is
/// round-trip bound and the cluster cannot show; sampled stores put the
/// per-shard kernels (what-if entropy, gain scans) back on the servers,
/// which is the regime a cluster exists for.
pub fn bench_dist_sharding() -> smn_core::ShardingConfig {
    smn_core::ShardingConfig { exact_threshold: 0, ..smn_core::ShardingConfig::default() }
}

/// One measured cluster size.
#[derive(Debug, Clone, Serialize)]
pub struct DistPoint {
    /// Shard-server processes behind the coordinator.
    pub servers: usize,
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Conflict components spread over the cluster.
    pub components: usize,
    /// Whether the distributed posterior matched the single-process
    /// network bitwise — at bootstrap and after the timed commits.
    pub bit_identical: bool,
    /// Milliseconds to bootstrap the cluster (structure shipment + every
    /// owned shard built).
    pub bootstrap_ms: f64,
    /// Milliseconds per routed `assert_candidate` (min over iters).
    pub assert_ms: f64,
    /// Milliseconds per batched `information_gains` over the uncertain
    /// pool (min over iters).
    pub gains_ms: f64,
    /// Milliseconds per batched what-if over the pool, both verdicts
    /// (min over iters).
    pub what_if_ms: f64,
}

/// The `--shard-server` entry of `exp_dist`: binds a loopback listener,
/// announces `PORT <n>` on stdout, serves exactly one coordinator
/// connection, exits. Run as a child process by
/// [`spawn_process_cluster`].
pub fn shard_server_main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let port = listener.local_addr().expect("local addr").port();
    println!("PORT {port}");
    let (stream, _) = listener.accept().expect("accept coordinator");
    let mut transport = TcpTransport::new(stream).expect("wrap stream");
    serve(&mut transport).expect("serve");
}

/// Spawns `n` shard-server child processes (re-executing the current
/// binary with `--shard-server`) and connects one TCP link to each.
pub fn spawn_process_cluster(n: usize) -> (Vec<Box<dyn Transport>>, Vec<Child>) {
    let exe = std::env::current_exe().expect("current exe");
    let mut links: Vec<Box<dyn Transport>> = Vec::with_capacity(n);
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        let mut child = Command::new(&exe)
            .arg("--shard-server")
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard server");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("piped stdout"))
            .read_line(&mut line)
            .expect("read port line");
        let port: u16 = line
            .trim()
            .strip_prefix("PORT ")
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("shard server announced {line:?}"));
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect shard server");
        links.push(Box::new(TcpTransport::new(stream).expect("wrap stream")));
        children.push(child);
    }
    (links, children)
}

fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one cluster over the supplied links (which the caller
/// spawned — processes for `exp_dist`, in-process channels in tests) and
/// shuts the cluster down. `reference` must be the single-process
/// network over the same `net`, sampler and sharding.
pub fn measure_point(
    net: &MatchingNetwork,
    reference: &ProbabilisticNetwork,
    groups: usize,
    links: Vec<Box<dyn Transport>>,
    iters: usize,
) -> DistPoint {
    let servers = links.len();
    let start = Instant::now();
    let mut dist = DistNetwork::new(net.clone(), bench_sampler(SEED), bench_dist_sharding(), links)
        .expect("bootstrap cluster");
    let bootstrap_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut bit_identical = dist.probabilities() == reference.probabilities();

    // committed rejections route one per iteration; mirror them on a
    // reference fork so the end state can be compared bitwise
    let mut mirror = reference.clone();
    let pool = mirror.uncertain_candidates();
    let mut targets = pool.iter().copied();
    let assert_ms = min_ms(iters, || {
        let candidate = targets.next().expect("pool outlasts the iterations");
        let assertion = Assertion { candidate, approved: false };
        dist.assert_candidate(assertion).expect("consistent rejection");
        mirror.assert_candidate(assertion).expect("consistent rejection");
    });
    bit_identical &= dist.probabilities() == mirror.probabilities();

    let pool = mirror.uncertain_candidates();
    let gains_ms = min_ms(iters, || drop(dist.information_gains(&pool)));
    let queries: Vec<_> = pool.iter().flat_map(|&c| [(c, true), (c, false)]).collect();
    let what_if_ms = min_ms(iters, || drop(dist.what_if_batch(&queries)));

    dist.shutdown().expect("orderly shutdown");
    DistPoint {
        servers,
        groups,
        candidates: net.candidate_count(),
        components: reference.shard_count(),
        bit_identical,
        bootstrap_ms,
        assert_ms,
        gains_ms,
        what_if_ms,
    }
}

/// Measures all [`SERVERS`] counts with child-process clusters.
pub fn measure(iters: usize) -> Vec<DistPoint> {
    let net = federation_network(GROUPS, SEED);
    let reference =
        ProbabilisticNetwork::new_sharded(net.clone(), bench_sampler(SEED), bench_dist_sharding());
    SERVERS
        .iter()
        .map(|&n| {
            let (links, children) = spawn_process_cluster(n);
            let point = measure_point(&net, &reference, GROUPS, links, iters);
            for mut child in children {
                let status = child.wait().expect("reap shard server");
                assert!(status.success(), "shard server exited with {status}");
            }
            point
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_dist::spawn_local_cluster;

    #[test]
    fn a_small_point_certifies_bit_identity() {
        // in-process channels, a small federation: the measurement path
        // itself (not the child-process plumbing) under test
        let net = crate::sharding::federation_network(4, SEED);
        let reference = ProbabilisticNetwork::new_sharded(
            net.clone(),
            bench_sampler(SEED),
            bench_dist_sharding(),
        );
        let (links, handles) = spawn_local_cluster(2);
        let links: Vec<Box<dyn Transport>> =
            links.into_iter().map(|l| Box::new(l) as Box<dyn Transport>).collect();
        let point = measure_point(&net, &reference, 4, links, 1);
        for h in handles {
            h.join().expect("server thread").expect("clean exit");
        }
        assert!(point.bit_identical, "distributed posterior diverged");
        assert_eq!(point.servers, 2);
        assert!(point.components > 0 && point.candidates > 0);
        assert!(point.bootstrap_ms > 0.0);
    }
}
