//! Request-driven serving measurements behind `BENCH_serve.json`.
//!
//! The scenario is a 96-cluster webform federation (≈4× the round-mode
//! throughput scenario, so its ≈1.4k uncertain candidates × redundancy 8
//! give enough answer capacity for ≥ 10⁴ concurrently participating
//! sessions). An open-loop workload (`smn_datasets::open_loop`) of
//! question→answer exchanges with seeded think-times drives the
//! [`ServingCore`] event by event; each point reports:
//!
//! * `answers` and `elapsed_ms` — derive sustained answers/s and compare
//!   against the round-mode baseline in `BENCH_service.json`
//!   (`bench.throughput`: `questions / (elapsed_ms / 1000)`, ≈ 98k q/s at
//!   8 workers);
//! * `commit_p50_us` / `commit_p99_us` / `commit_max_us` — wall-clock of
//!   the commit-lane flushes (the pause an answer's session could observe
//!   at commit time);
//! * `logical_p50` / `logical_p99` — decided→committed latency in
//!   logical clock ticks (deterministic, survives timing scrubs).
//!
//! Only the `_ms`/`_us` keys carry wall-clock, so `SMN_SCRUB_TIMINGS=1`
//! zeroes exactly them and the rest of the JSON is byte-reproducible.

use crate::sharding::{bench_sampler, bench_sharding, federation_case};
use serde::Serialize;
use smn_core::{MatchingNetwork, ProbabilisticNetwork};
use smn_datasets::{open_loop, SessionAction, WorkloadSpec};
use smn_schema::Correspondence;
use smn_service::{Aggregation, Scheduler, ServeConfig, ServiceEvent, ServingCore};
use std::time::Instant;

/// Webform clusters in the serving scenario.
pub const SERVE_GROUPS: usize = 96;

/// Worker counts scanned at [`BASE_SESSIONS`] sessions.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Configured sessions of the worker scan.
pub const BASE_SESSIONS: u64 = 10_000;

/// Session sweep at 8 workers.
pub const SESSION_SWEEP: [u64; 2] = [100_000, 1_000_000];

/// One serving measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServePoint {
    /// Crowd workers (= commit threads = redundancy `k`).
    pub workers: usize,
    /// Sessions configured in the open-loop workload.
    pub sessions: u64,
    /// Sessions that actually reached the core (workload participation is
    /// capped by the question budget).
    pub sessions_touched: u64,
    /// Redundancy `k`.
    pub redundancy: usize,
    /// Events accepted at ingress.
    pub events: u64,
    /// Worker answers collected — the serving-throughput numerator.
    pub answers: u64,
    /// Committed assertions.
    pub commits: usize,
    /// Commit-buffer flushes.
    pub flushes: u64,
    /// Final network uncertainty (deterministic).
    pub final_entropy: f64,
    /// Median decided→committed latency in logical ticks (deterministic).
    pub logical_p50: u64,
    /// 99th-percentile decided→committed latency in logical ticks.
    pub logical_p99: u64,
    /// Wall-clock of the whole event-driven run (min over iters).
    pub elapsed_ms: f64,
    /// Median commit-lane flush wall-clock.
    pub commit_p50_us: f64,
    /// 99th-percentile commit-lane flush wall-clock.
    pub commit_p99_us: f64,
    /// Worst commit-lane flush wall-clock.
    pub commit_max_us: f64,
}

/// The full `BENCH_serve.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBench {
    /// Webform clusters in the federation.
    pub groups: usize,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Uncertain candidates after initial sampling (the answer capacity
    /// is `uncertain × k`).
    pub uncertain: usize,
    /// Worker scan at [`BASE_SESSIONS`] sessions plus the session sweep
    /// at 8 workers.
    pub points: Vec<ServePoint>,
}

/// Builds the serving scenario once: network, truth and the uncertain
/// count of its seeded initial sampling.
pub fn serve_scenario(groups: usize) -> (MatchingNetwork, Vec<Correspondence>, usize) {
    let (net, truth) = federation_case(groups, 7);
    let probe = ProbabilisticNetwork::new_sharded(net.clone(), bench_sampler(3), bench_sharding());
    let uncertain = probe.probabilities().iter().filter(|&&p| p > 0.0 && p < 1.0).count();
    (net, truth, uncertain)
}

/// The serving config of a bench point.
pub fn serve_config(workers: usize) -> ServeConfig {
    ServeConfig {
        sampler: bench_sampler(3),
        sharding: bench_sharding(),
        redundancy: workers,
        aggregation: Aggregation::QualityWeighted,
        threads: workers,
        scheduler: Scheduler::Pool,
        seed: 17,
        capacity: 65_536,
        flush_every: 64,
        max_forks: 8_192,
    }
}

/// The open-loop event stream of a bench point: enough question→answer
/// exchanges to exhaust the answer capacity (`uncertain × k`, plus a 20%
/// tail that starves — which also pushes the participating-session count
/// past 10⁴ at 8 workers), spread over `sessions` sessions.
pub fn serve_events(sessions: u64, uncertain: usize, k: usize, seed: u64) -> Vec<ServiceEvent> {
    let questions = (uncertain * k) as u64 * 6 / 5;
    let spec =
        WorkloadSpec { sessions, questions, think_min: 1, think_max: 16, publish_every: 256, seed };
    open_loop(spec)
        .map(|a| match a.action {
            SessionAction::Question { session } => ServiceEvent::Question { session },
            SessionAction::Answer { session } => ServiceEvent::Answer { session, verdict: None },
            SessionAction::Publish => ServiceEvent::PublishTick,
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Runs one serving point: the event stream is submitted and pumped one
/// event at a time so each commit-lane flush can be timed individually;
/// the whole-run wall-clock keeps the minimum over `iters` repetitions,
/// flush latencies the distribution of the fastest iteration.
pub fn run_point(
    net: &MatchingNetwork,
    truth: &[Correspondence],
    workers: usize,
    sessions: u64,
    uncertain: usize,
    iters: usize,
) -> ServePoint {
    let events = serve_events(sessions, uncertain, workers, 13);
    let mut best_ms = f64::INFINITY;
    let mut best_flush_us: Vec<f64> = Vec::new();
    let mut report = None;
    for _ in 0..iters.max(1) {
        let mut core = ServingCore::new(
            net.clone(),
            truth.to_vec(),
            vec![0.1; workers],
            serve_config(workers),
        )
        .expect("bench serving config");
        let mut flush_us: Vec<f64> = Vec::new();
        let start = Instant::now();
        for &event in &events {
            if core.submit(event).is_err() {
                core.pump();
                core.submit(event).expect("drained queue accepts");
            }
            let flushes_before = core.flushes();
            let tick = Instant::now();
            core.pump();
            if core.flushes() != flushes_before {
                flush_us.push(tick.elapsed().as_secs_f64() * 1e6);
            }
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        report = Some(core.finish());
        if elapsed < best_ms {
            best_ms = elapsed;
            best_flush_us = flush_us;
        }
    }
    let report = report.expect("at least one iteration ran");
    best_flush_us.sort_by(f64::total_cmp);
    ServePoint {
        workers,
        sessions,
        sessions_touched: report.sessions,
        redundancy: report.redundancy,
        events: report.events_accepted,
        answers: report.questions_asked,
        commits: report.commits.len(),
        flushes: report.flushes,
        final_entropy: report.final_entropy,
        logical_p50: report.latency.p50,
        logical_p99: report.latency.p99,
        elapsed_ms: best_ms,
        commit_p50_us: percentile(&best_flush_us, 0.50),
        commit_p99_us: percentile(&best_flush_us, 0.99),
        commit_max_us: best_flush_us.last().copied().unwrap_or(0.0),
    }
}

/// Measures the full serving scan: worker counts at [`BASE_SESSIONS`]
/// sessions, then the session sweep at 8 workers.
pub fn measure(iters: usize) -> ServeBench {
    let (net, truth, uncertain) = serve_scenario(SERVE_GROUPS);
    let mut points = Vec::new();
    for &workers in &WORKER_COUNTS {
        points.push(run_point(&net, &truth, workers, BASE_SESSIONS, uncertain, iters));
    }
    for &sessions in &SESSION_SWEEP {
        points.push(run_point(&net, &truth, 8, sessions, uncertain, iters));
    }
    ServeBench { groups: SERVE_GROUPS, candidates: net.candidate_count(), uncertain, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_points_are_deterministic_in_content() {
        let (net, truth, uncertain) = serve_scenario(8);
        let a = run_point(&net, &truth, 2, 64, uncertain, 1);
        let b = run_point(&net, &truth, 2, 64, uncertain, 1);
        assert!(a.answers > 0, "the workload must collect answers");
        assert!(a.commits > 0, "answers must commit");
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.final_entropy, b.final_entropy);
        assert_eq!(a.logical_p99, b.logical_p99);
        assert_eq!(a.sessions_touched, b.sessions_touched);
    }
}
