//! Human-readable tables and machine-readable JSON result files.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a JSON result file under `results/` (created on demand) and
/// returns its path.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["dataset", "#schemas"]);
        t.row(["BP", "3"]);
        t.row(["WebForm", "89"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // right-aligned: the "3" under "#schemas" ends at the same column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
