//! Human-readable tables and machine-readable JSON result files.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a JSON result file under `results/` (created on demand) and
/// returns its path.
///
/// With `SMN_SCRUB_TIMINGS=1` every wall-clock field (key suffix `_ms`,
/// `_us` or `_seconds`, and derived `speedup*` ratios) is zeroed before
/// writing: all remaining content of every experiment report is a
/// deterministic function of its seeds, so the CI determinism smoke can
/// require two identically-seeded runs of each bin to emit *byte-identical*
/// files.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut body = serde_json::to_string_pretty(value)?;
    if std::env::var("SMN_SCRUB_TIMINGS").is_ok_and(|v| v == "1") {
        body = scrub_timings(&body);
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Replaces the numeric value of every timing line in pretty-printed JSON
/// with `0.0`. Pretty printing puts one `"key": value` pair per line, so a
/// line-based rewrite is exact; keys are classified by suffix.
fn scrub_timings(pretty: &str) -> String {
    let timing_key = |key: &str| {
        key.ends_with("_ms")
            || key.ends_with("_us")
            || key.ends_with("_seconds")
            || key.contains("micros")
            || key.starts_with("speedup")
    };
    let mut out = String::with_capacity(pretty.len());
    for line in pretty.lines() {
        let scrubbed = (|| {
            let (head, rest) = (line.find('"')?, line);
            let key_end = rest[head + 1..].find('"')? + head + 1;
            let key = &rest[head + 1..key_end];
            let colon = rest[key_end..].find(':')? + key_end;
            if !timing_key(key) {
                return None;
            }
            let tail = if rest.trim_end().ends_with(',') { "," } else { "" };
            Some(format!("{}: 0.0{}", &rest[..colon], tail))
        })();
        out.push_str(scrubbed.as_deref().unwrap_or(line));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["dataset", "#schemas"]);
        t.row(["BP", "3"]);
        t.row(["WebForm", "89"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // right-aligned: the "3" under "#schemas" ends at the same column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn scrub_zeroes_timing_fields_only() {
        let json = "{\n  \"groups\": 4,\n  \"fill_ms\": 1.25,\n  \"speedup_per_arrival\": 3.5,\n  \"kl_ratio\": 0.02,\n  \"elapsed_seconds\": 9.0\n}";
        let scrubbed = scrub_timings(json);
        assert!(scrubbed.contains("\"groups\": 4,"));
        assert!(scrubbed.contains("\"fill_ms\": 0.0,"));
        assert!(scrubbed.contains("\"speedup_per_arrival\": 0.0,"));
        assert!(scrubbed.contains("\"kl_ratio\": 0.02,"));
        assert!(scrubbed.contains("\"elapsed_seconds\": 0.0\n"));
        // idempotent
        assert_eq!(scrub_timings(&scrubbed), scrubbed);
    }
}
