//! # smn-bench
//!
//! Experiment harness for the ICDE 2014 evaluation (§VI). Each binary in
//! `src/bin/` regenerates one table or figure of the paper:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `exp_table2` | Table II — dataset statistics |
//! | `exp_table3` | Table III — constraint violations per matcher |
//! | `exp_fig6` | Fig. 6 — sampling time vs network size |
//! | `exp_fig7` | Fig. 7 — sampling effectiveness (K-L ratio) |
//! | `exp_fig8` | Fig. 8 — probability vs correctness histogram |
//! | `exp_fig9` | Fig. 9 — uncertainty reduction vs user effort |
//! | `exp_fig10` | Fig. 10 — ordering strategies vs instantiation quality |
//! | `exp_fig11` | Fig. 11 — likelihood criterion in instantiation |
//! | `exp_sharding` | monolithic vs component-sharded probabilistic networks |
//! | `exp_persist` | durability: snapshot save/load and WAL replay costs |
//! | `exp_evolve` | incremental maintenance vs full rebuild on an evolving federation |
//! | `exp_service` | concurrent multi-worker reconciliation: fork/commit costs, worker × error × redundancy grid |
//! | `exp_serve` | request-driven serving: sustained answers/s and commit-lane latency at 10⁴–10⁶ open-loop sessions |
//! | `exp_speed` | single-node speed ceiling: hot paths vs the PR-2 baseline, batched what-if, federation scale |
//! | `exp_select` | incremental gain-cache selection: cached vs fresh-scan question cost, trace-identical by construction |
//! | `exp_dist` | multi-process shard servers: 1/2/4-server scaling on a 240-cluster federation |
//!
//! Binaries print the paper's rows/series to stdout and write
//! machine-readable JSON to `results/`. Criterion micro-benchmarks (incl.
//! the ablations listed in DESIGN.md) live under `benches/`.

pub mod dist;
pub mod evolve;
pub mod grid;
pub mod hotpaths;
pub mod persist;
pub mod report;
pub mod runner;
pub mod select;
pub mod serve;
pub mod service;
pub mod setup;
pub mod sharding;
pub mod speed;

pub use grid::EffortGrid;
pub use report::{save_json, Table};
pub use runner::{available_threads, parallel_runs, sampling_chains};
pub use setup::{matched_network, standard_sampler, MatcherKind};
