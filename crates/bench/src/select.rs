//! Incremental gain-cache selection measurements behind
//! `BENCH_select.json`.
//!
//! The scenario is the paper's question loop (Algorithm 1) on a sharded
//! federation: select the argmax-gain candidate, integrate a
//! deterministic verdict, repeat. Two strategies run the *same* loop
//! from the same seed:
//!
//! * **fresh** — [`InformationGainSelection::without_cache`], the
//!   pre-cache behaviour: every question re-prices the whole uncertain
//!   pool, `O(|C|)` per question regardless of what the last answer
//!   touched.
//! * **cached** — the default cache-enabled strategy: per-shard epochs
//!   mark the one component the last assertion dirtied, the refresh
//!   re-prices only that component, and the argmax walks the lazily
//!   maintained per-shard maxima (see `docs/SELECTION.md`).
//!
//! Each point records the per-question selection cost of both paths and
//! — the part that makes the number trustworthy — replays both traces
//! and requires them identical: same candidate, same score bits, same
//! verdict at every step. A cache that drifted by one tie-break would
//! flunk `identical_traces` before it could flatter `speedup`.
//!
//! The `exp_select` binary prints the table and writes
//! `results/select_<label>.json`; `benches/select.rs` wraps the same
//! loop in criterion. Every non-timing field is a pure function of the
//! seeds (`SMN_SCRUB_TIMINGS=1` zeroes the rest), so the CI determinism
//! smoke covers this report too.

use crate::sharding::{bench_sampler, bench_sharding, federation_network};
use crate::speed::FEDERATION_GROUPS;
use serde::Serialize;
use smn_core::feedback::Assertion;
use smn_core::selection::SelectionStrategy;
use smn_core::{InformationGainSelection, ProbabilisticNetwork};
use smn_schema::CandidateId;
use std::time::Instant;

/// Questions per reconciliation run — enough to amortize the cached
/// path's one cold full scan and to touch many distinct components.
pub const QUESTIONS: usize = 64;

/// Strategy seed shared by both paths (tie-breaks must replay).
pub const STRATEGY_SEED: u64 = 11;

/// One `(candidate, score bits, verdict)` step of a reconciliation run.
pub type TraceStep = (CandidateId, Option<u64>, bool);

/// One federation point of the selection comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SelectPoint {
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Conflict components (= shards).
    pub components: usize,
    /// Questions asked per run.
    pub questions: usize,
    /// Milliseconds of *selection* per question for the fresh full scan
    /// (min over iters of the run's select-time total / questions).
    pub fresh_per_question_ms: f64,
    /// Milliseconds of selection per question for the cached path,
    /// including its cold first scan.
    pub cached_per_question_ms: f64,
    /// `fresh_per_question_ms / cached_per_question_ms`.
    pub speedup: f64,
    /// Whether the two traces agreed step for step, score bits included.
    pub identical_traces: bool,
    /// FNV-1a over the shared trace — the replayable identity of the run.
    pub trace_fingerprint: u64,
}

/// The full `BENCH_select.json` report.
#[derive(Debug, Clone, Serialize)]
pub struct SelectReport {
    pub points: Vec<SelectPoint>,
}

/// Runs the question loop once and returns `(trace, select_ms_total)`.
/// Only the `select_with_score` calls are timed — integration cost is
/// identical on both paths and measured elsewhere (`exp_speed`).
fn run_loop(
    pn: &mut ProbabilisticNetwork,
    strategy: &mut InformationGainSelection,
) -> (Vec<TraceStep>, f64) {
    let mut trace = Vec::with_capacity(QUESTIONS);
    let mut select_s = 0.0;
    for _ in 0..QUESTIONS {
        let start = Instant::now();
        let picked = strategy.select_with_score(pn);
        select_s += start.elapsed().as_secs_f64();
        let Some((candidate, score)) = picked else { break };
        // deterministic verdict: approve the likely, with a disapprove
        // fallback when an approval would contradict standing feedback
        // (disapproving an unasserted candidate is always consistent)
        let mut approved = pn.probability(candidate) > 0.5;
        if pn.assert_candidate(Assertion { candidate, approved }).is_err() {
            approved = false;
            pn.assert_candidate(Assertion { candidate, approved }).expect("disapproval");
        }
        trace.push((candidate, score.map(f64::to_bits), approved));
    }
    (trace, select_s * 1e3)
}

fn fingerprint(trace: &[TraceStep]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(c, score, approved) in trace {
        for w in [c.0 as u64, score.unwrap_or(u64::MAX), approved as u64] {
            h ^= w;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Measures one federation point: both paths run the identical loop from
/// a freshly built network (the cached run starts cold and pays its own
/// first full scan), min-over-iters on the per-question selection cost.
pub fn measure_point(groups: usize, iters: usize) -> SelectPoint {
    let net = federation_network(groups, 7);
    let sampler = bench_sampler(3);
    let sharding = bench_sharding();

    let mut fresh_best = f64::INFINITY;
    let mut cached_best = f64::INFINITY;
    let mut fresh_trace = Vec::new();
    let mut cached_trace = Vec::new();
    for _ in 0..iters.max(1) {
        // a fresh build per run: each network carries its own (cold)
        // gain cache, so no warmth leaks between iterations
        let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
        let mut strategy = InformationGainSelection::new(STRATEGY_SEED).without_cache();
        let (trace, ms) = run_loop(&mut pn, &mut strategy);
        fresh_best = fresh_best.min(ms);
        fresh_trace = trace;

        let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
        let mut strategy = InformationGainSelection::new(STRATEGY_SEED);
        let (trace, ms) = run_loop(&mut pn, &mut strategy);
        cached_best = cached_best.min(ms);
        cached_trace = trace;
    }

    let identical = fresh_trace == cached_trace;
    let questions = fresh_trace.len();
    let fresh_ms = fresh_best / questions.max(1) as f64;
    let cached_ms = cached_best / questions.max(1) as f64;
    SelectPoint {
        groups,
        candidates: net.candidate_count(),
        components: {
            let pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
            pn.shard_count()
        },
        questions,
        fresh_per_question_ms: fresh_ms,
        cached_per_question_ms: cached_ms,
        speedup: fresh_ms / cached_ms,
        identical_traces: identical,
        trace_fingerprint: fingerprint(&fresh_trace),
    }
}

/// Measures the whole report.
pub fn measure(iters: usize) -> SelectReport {
    SelectReport { points: FEDERATION_GROUPS.iter().map(|&g| measure_point(g, iters)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_and_fresh_traces_agree_on_a_small_federation() {
        let p = measure_point(8, 1);
        assert!(p.identical_traces, "gain cache changed the question trace");
        assert!(p.questions > 0 && p.candidates > 0);
        assert!(p.fresh_per_question_ms > 0.0 && p.cached_per_question_ms > 0.0);
    }
}
