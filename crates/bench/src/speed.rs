//! Single-node speed-ceiling measurements behind `BENCH_speed.json`.
//!
//! Three sections, one JSON report:
//!
//! * **Hot paths vs the PR-2 baseline** — the `BENCH_hotpaths.json`
//!   quantities (sampling fill, batch information gains, per-assertion
//!   view maintenance + recompute) at the standard sizes, with the PR-2
//!   optimized numbers checked in as [`PR2_OPTIMIZED_MS`] and the speedup
//!   ratios derived in the report. The wins are algorithmic, measured on
//!   a single core: the batched transpose append of the sample matrix
//!   (fill), the frontier unwind on rejected walk steps (fill), the
//!   blocked gain scan (gains) and the BMI2 column compaction of view
//!   maintenance (assert).
//! * **Batched what-if** — [`what_if_batch`] against a per-candidate
//!   [`what_if`] loop on a sharded federation, with the max absolute
//!   entropy delta between the two paths recorded (the 1e-12 equivalence
//!   evidence). The batch path re-evaluates only the touched shard per
//!   query (`H' = H − H_k + H'_k`) instead of forking the whole network.
//! * **Federation scale** — sharded-only points up to `|C| ≈ 10⁴`,
//!   recording per-assertion and per-candidate gain-scan cost. Both are
//!   functions of *component* size, not total `|C|`, so they stay
//!   near-flat as the federation grows.
//!
//! The `exp_speed` binary prints the sections and writes
//! `results/speed_<label>.json`; `benches/speed.rs` wraps the same setups
//! in criterion. Every non-timing field is a pure function of the seeds
//! (`SMN_SCRUB_TIMINGS=1` zeroes the rest), so the CI determinism smoke
//! covers this report too.
//!
//! [`what_if_batch`]: ProbabilisticNetwork::what_if_batch
//! [`what_if`]: ProbabilisticNetwork::what_if

use crate::hotpaths::{measure_point, HotpathPoint, SIZES};
use crate::sharding::{bench_sampler, bench_sharding, federation_network, owned_probe};
use serde::Serialize;
use smn_core::feedback::Assertion;
use smn_core::ProbabilisticNetwork;
use std::time::Instant;

/// The PR-2 optimized hot-path numbers this PR is gated against, as
/// `(candidates, sampling_fill_ms, information_gains_ms,
/// assert_candidate_ms)` — the `BENCH_hotpaths.json` values checked in by
/// the wide-bitset PR at the standard sizes.
pub const PR2_OPTIMIZED_MS: [(usize, f64, f64, f64); 3] = [
    (58, 0.044371, 0.091471, 0.021165),
    (352, 0.193374, 1.486568, 0.07193),
    (1417, 0.521422, 15.683365, 0.243339),
];

/// Federation sizes of the scale section (fused 3-schema sub-networks;
/// ≈ 15 candidates each, so 96 ≈ the |C|≈1.4k hot-path regime and 700
/// reaches |C| ≈ 10⁴).
pub const FEDERATION_GROUPS: [usize; 2] = [96, 700];

/// Hypothetical assertions evaluated by the what-if section.
pub const WHAT_IF_QUERIES: usize = 128;

/// One hot-path size point with its PR-2 ratio.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedPoint {
    /// The re-measured hot paths (same setups as `BENCH_hotpaths.json`).
    pub hotpaths: HotpathPoint,
    /// PR-2 optimized sampling-fill milliseconds at this size.
    pub baseline_fill_ms: f64,
    /// PR-2 optimized information-gains milliseconds at this size.
    pub baseline_gains_ms: f64,
    /// PR-2 optimized assert-candidate milliseconds at this size.
    pub baseline_assert_ms: f64,
    /// `baseline_fill_ms / sampling_fill_ms`.
    pub speedup_fill: f64,
    /// `baseline_gains_ms / information_gains_ms`.
    pub speedup_gains: f64,
    /// `baseline_assert_ms / assert_candidate_ms`.
    pub speedup_assert: f64,
}

/// The batched-vs-per-candidate what-if comparison.
#[derive(Debug, Clone, Serialize)]
pub struct WhatIfPoint {
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Conflict components (= shards).
    pub components: usize,
    /// Hypothetical assertions evaluated.
    pub queries: usize,
    /// Largest `|what_if − what_if_batch|` over the queries — the
    /// equivalence evidence (deterministic per seed; both paths are).
    pub max_abs_delta: f64,
    /// Whether `max_abs_delta ≤ 1e-12`.
    pub equivalent: bool,
    /// Milliseconds for the per-candidate `what_if` loop (min over iters).
    pub per_candidate_ms: f64,
    /// Milliseconds for one `what_if_batch` call (min over iters).
    pub batched_ms: f64,
    /// `per_candidate_ms / batched_ms`.
    pub speedup_batch: f64,
}

/// One federation scale point (sharded representation only).
#[derive(Debug, Clone, Serialize)]
pub struct FederationSpeedPoint {
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Candidate-set size `|C|`.
    pub candidates: usize,
    /// Conflict components (= shards).
    pub components: usize,
    /// Candidates in the largest component — the quantity per-assertion
    /// and per-gain-scan cost actually scale with.
    pub largest_component: usize,
    /// Uncertain candidates (the gain-scan pool).
    pub uncertain: usize,
    /// Whether two independent sharded builds agreed bit-for-bit.
    pub deterministic: bool,
    /// Order-independent hash of the posterior vector's bit patterns.
    pub fingerprint: u64,
    /// Milliseconds to build the sharded network (min over iters).
    pub build_ms: f64,
    /// Milliseconds per owned `assert_candidate` (min over iters) — flat
    /// in `largest_component`, not `candidates`.
    pub assert_ms: f64,
    /// Milliseconds for one batch `information_gains` over the whole
    /// uncertain pool (min over iters).
    pub gains_ms: f64,
    /// Microseconds of gain scan per pool candidate
    /// (`gains_ms · 1000 / uncertain`) — flat in `largest_component`.
    pub gain_scan_per_candidate_us: f64,
}

/// The full `BENCH_speed.json` report.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedReport {
    pub hotpaths: Vec<SpeedPoint>,
    pub what_if: WhatIfPoint,
    pub federation: Vec<FederationSpeedPoint>,
}

fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Re-measures the hot-path sizes and derives the PR-2 ratios.
pub fn measure_hotpaths(iters: usize) -> Vec<SpeedPoint> {
    SIZES
        .iter()
        .zip(PR2_OPTIMIZED_MS)
        .map(|(&(s, a), (c, base_fill, base_gains, base_assert))| {
            let p = measure_point(s, a, iters);
            debug_assert_eq!(p.candidates, c, "PR-2 baseline rows are per |C|");
            SpeedPoint {
                baseline_fill_ms: base_fill,
                baseline_gains_ms: base_gains,
                baseline_assert_ms: base_assert,
                speedup_fill: base_fill / p.sampling_fill_ms,
                speedup_gains: base_gains / p.information_gains_ms,
                speedup_assert: base_assert / p.assert_candidate_ms,
                hotpaths: p,
            }
        })
        .collect()
}

/// The standard what-if query mix on a network: the first
/// [`WHAT_IF_QUERIES`] uncertain candidates, alternating approve /
/// disapprove so both maintenance directions are exercised.
pub fn what_if_queries(pn: &ProbabilisticNetwork) -> Vec<(smn_schema::CandidateId, bool)> {
    pn.uncertain_candidates()
        .into_iter()
        .take(WHAT_IF_QUERIES)
        .enumerate()
        .map(|(i, c)| (c, i % 2 == 0))
        .collect()
}

/// Measures the batched what-if section on the small federation size.
pub fn measure_what_if(iters: usize) -> WhatIfPoint {
    let groups = FEDERATION_GROUPS[0];
    let net = federation_network(groups, 7);
    let pn = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
    let queries = what_if_queries(&pn);

    let per: Vec<f64> = queries.iter().map(|&(c, a)| pn.what_if(c, a)).collect();
    let batched = pn.what_if_batch(&queries);
    let max_abs_delta = per.iter().zip(&batched).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);

    let per_candidate_ms = min_ms(iters, || {
        for &(c, a) in &queries {
            std::hint::black_box(pn.what_if(c, a));
        }
    });
    let batched_ms = min_ms(iters, || drop(pn.what_if_batch(&queries)));

    WhatIfPoint {
        groups,
        candidates: pn.network().candidate_count(),
        components: pn.shard_count(),
        queries: queries.len(),
        max_abs_delta,
        equivalent: max_abs_delta <= 1e-12,
        per_candidate_ms,
        batched_ms,
        speedup_batch: per_candidate_ms / batched_ms,
    }
}

/// Measures one federation scale point.
pub fn measure_federation_point(groups: usize, iters: usize) -> FederationSpeedPoint {
    let net = federation_network(groups, 7);
    let sampler = bench_sampler(3);
    let sharding = bench_sharding();
    let pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
    let again = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
    let deterministic = pn.probabilities() == again.probabilities();
    // FNV over the posterior bit patterns in candidate order — the
    // byte-level identity the determinism claim is about
    let fp = {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &p in pn.probabilities() {
            h ^= p.to_bits();
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    };
    let largest_component = smn_constraints::Components::of_index(net.index()).largest();

    let build_ms =
        min_ms(iters, || drop(ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding)));

    // owned-assert protocol (see `sharding::measure_point`): the warm-up
    // assertion unshares the probe's shard so the timer sees the owned
    // path, not the copy-on-write commit
    let (warm, probe) = owned_probe(&pn);
    let assert_ms = {
        let mut best = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let mut fresh = pn.clone();
            fresh.assert_candidate(Assertion { candidate: warm, approved: false }).unwrap();
            let start = Instant::now();
            fresh.assert_candidate(Assertion { candidate: probe, approved: true }).unwrap();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };

    let pool = pn.uncertain_candidates();
    let gains_ms = min_ms(iters, || drop(pn.information_gains(&pool)));

    FederationSpeedPoint {
        groups,
        candidates: net.candidate_count(),
        components: pn.shard_count(),
        largest_component,
        uncertain: pool.len(),
        deterministic,
        fingerprint: fp,
        build_ms,
        assert_ms,
        gains_ms,
        gain_scan_per_candidate_us: gains_ms * 1e3 / pool.len().max(1) as f64,
    }
}

/// Measures the whole report.
pub fn measure(iters: usize) -> SpeedReport {
    SpeedReport {
        hotpaths: measure_hotpaths(iters),
        what_if: measure_what_if(iters),
        federation: FEDERATION_GROUPS.iter().map(|&g| measure_federation_point(g, iters)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn what_if_batch_matches_per_candidate_loop() {
        let p = measure_what_if(1);
        assert!(p.equivalent, "batched what-if drifted: max |Δ| = {:e}", p.max_abs_delta);
        assert!(p.queries > 0 && p.components > p.groups / 2);
    }

    #[test]
    fn small_federation_point_is_deterministic() {
        let p = measure_federation_point(8, 1);
        assert!(p.deterministic, "sharded build must be bit-deterministic per seed");
        assert!(p.candidates > 0 && p.uncertain > 0);
        assert!(p.largest_component < p.candidates, "a federation has many components");
        assert!(p.assert_ms > 0.0 && p.gains_ms > 0.0);
    }

    #[test]
    fn baseline_rows_align_with_sizes() {
        assert_eq!(PR2_OPTIMIZED_MS.len(), SIZES.len());
    }
}
