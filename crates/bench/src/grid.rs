//! Mapping reconciliation traces onto fixed effort grids.
//!
//! The figures plot quality measures against user-effort *percentages*;
//! individual runs produce traces indexed by assertion count. The grid
//! samples each trace at fixed effort fractions (carrying the last value
//! forward) so runs of different lengths can be averaged point-wise.

/// A fixed grid of effort fractions with per-point accumulators.
#[derive(Debug, Clone)]
pub struct EffortGrid {
    points: Vec<f64>,
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl EffortGrid {
    /// A grid over the given effort fractions (ascending, in `[0, 1]`).
    pub fn new(points: impl IntoIterator<Item = f64>) -> Self {
        let points: Vec<f64> = points.into_iter().collect();
        assert!(points.windows(2).all(|w| w[0] <= w[1]), "grid must be ascending");
        let n = points.len();
        Self { points, sums: vec![0.0; n], counts: vec![0; n] }
    }

    /// A percent grid `0, step, 2·step, …, 100`.
    pub fn percent(step: usize) -> Self {
        assert!(step > 0 && step <= 100);
        Self::new((0..=100 / step).map(|i| (i * step) as f64 / 100.0))
    }

    /// The grid points (effort fractions).
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Adds one run's trajectory: `(effort, value)` pairs with ascending
    /// effort, plus the value at zero effort. Each grid point receives the
    /// last trajectory value at or before it.
    pub fn add_run(&mut self, value_at_zero: f64, trajectory: &[(f64, f64)]) {
        debug_assert!(trajectory.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut idx = 0usize;
        let mut last = value_at_zero;
        for (gi, &g) in self.points.iter().enumerate() {
            while idx < trajectory.len() && trajectory[idx].0 <= g + 1e-12 {
                last = trajectory[idx].1;
                idx += 1;
            }
            self.sums[gi] += last;
            self.counts[gi] += 1;
        }
    }

    /// Point-wise means over the added runs (`None` before any run).
    pub fn means(&self) -> Option<Vec<f64>> {
        if self.counts.contains(&0) {
            return None;
        }
        Some(self.sums.iter().zip(&self.counts).map(|(s, &c)| s / c as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_grid_shape() {
        let g = EffortGrid::percent(25);
        assert_eq!(g.points(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn carries_last_value_forward() {
        let mut g = EffortGrid::percent(25);
        // one run: entropy 1.0 at zero, drops to 0.4 at 30% and 0.1 at 80%
        g.add_run(1.0, &[(0.3, 0.4), (0.8, 0.1)]);
        let m = g.means().unwrap();
        assert_eq!(m, vec![1.0, 1.0, 0.4, 0.4, 0.1]);
    }

    #[test]
    fn averages_across_runs() {
        let mut g = EffortGrid::percent(50);
        g.add_run(1.0, &[(0.5, 0.5), (1.0, 0.0)]);
        g.add_run(0.5, &[(0.5, 0.3), (1.0, 0.1)]);
        let m = g.means().unwrap();
        assert!((m[0] - 0.75).abs() < 1e-12);
        assert!((m[1] - 0.4).abs() < 1e-12);
        assert!((m[2] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn means_none_before_any_run() {
        let g = EffortGrid::percent(10);
        assert!(g.means().is_none());
    }

    #[test]
    fn exact_grid_hits_are_included() {
        let mut g = EffortGrid::new([0.0, 0.5, 1.0]);
        g.add_run(2.0, &[(0.5, 1.0)]);
        assert_eq!(g.means().unwrap(), vec![2.0, 1.0, 1.0]);
    }
}
