//! Durability measurements behind `BENCH_persist.json`.
//!
//! For each federation size this module builds the standard sharding bench
//! scenario ([`crate::sharding::federation_case`]), drives a deterministic
//! assertion run journaled into a write-ahead log, then times the three
//! durability operations of `smn-storage`:
//!
//! * `save_ms` — encoding the end-state network + history into the binary
//!   snapshot format (min over iters);
//! * `load_ms` — decoding that snapshot back into a ready
//!   `ProbabilisticNetwork`, recomputed posteriors included (min over
//!   iters);
//! * `replay_ms` — crash recovery from the *initial* snapshot plus the
//!   full log: decode, rebuild, replay every journaled event (min over
//!   iters).
//!
//! Each point also certifies correctness alongside the numbers:
//! `round_trip_identical` (save∘load∘save reproduces the snapshot bytes)
//! and `replay_exact` (recovery's posteriors are bit-identical to the live
//! network's). Sizes (`snapshot_bytes`, `wal_bytes`, `wal_events`) are
//! deterministic functions of the seeds, so the emitted JSON passes the
//! CI determinism smoke with timings scrubbed.

use crate::sharding::{bench_sampler, bench_sharding, federation_case};
use serde::Serialize;
use smn_core::feedback::Assertion;
use smn_core::persist::{apply_to_history, NetworkEvent};
use smn_core::ProbabilisticNetwork;
use smn_storage::{load_with_history, recover, save_with_history, WalBuffer};
use std::time::Instant;

/// Federation sizes measured — the 12- and 24-cluster presets of the
/// sharding bench.
pub const GROUPS: [usize; 2] = [12, 24];

/// One measured federation size.
#[derive(Debug, Clone, Serialize)]
pub struct PersistPoint {
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Candidate-set size `|C|` at the end state.
    pub candidates: usize,
    /// Conflict components (= shard count).
    pub components: usize,
    /// Assertions applied (and journaled) by the run.
    pub wal_events: usize,
    /// Encoded end-state snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Write-ahead log size in bytes (header + every record).
    pub wal_bytes: usize,
    /// Whether `save → load → save` reproduced the snapshot bytes.
    pub round_trip_identical: bool,
    /// Whether recovery (initial snapshot + log replay) reproduced the
    /// live end-state posteriors bit for bit.
    pub replay_exact: bool,
    /// Milliseconds to encode the end-state snapshot (min over iters).
    pub save_ms: f64,
    /// Milliseconds to decode it back into a ready network (min over
    /// iters).
    pub load_ms: f64,
    /// Milliseconds for full crash recovery — initial snapshot decode plus
    /// replay of every logged event (min over iters).
    pub replay_ms: f64,
}

fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one federation size; `iters` timing repetitions per quantity.
pub fn measure_point(groups: usize, iters: usize) -> PersistPoint {
    let (net, _) = federation_case(groups, 7);
    let mut pn = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
    let base_snapshot = save_with_history(&pn, &[], 0);

    // a deterministic reconciliation run, journaled: validate every other
    // uncertain candidate, approving two of each three
    let mut wal = WalBuffer::new(1);
    let mut history: Vec<Assertion> = Vec::new();
    let targets: Vec<_> = pn.uncertain_candidates().into_iter().step_by(2).collect();
    for (i, candidate) in targets.into_iter().enumerate() {
        let approved = i % 3 != 0;
        if pn.assert_candidate(Assertion { candidate, approved }).is_ok() {
            let event = NetworkEvent::Assert { candidate, approved };
            wal.append(&event);
            apply_to_history(&mut history, &event);
        }
    }
    let applied_seq = history.len() as u64;

    let bytes = save_with_history(&pn, &history, applied_seq);
    let (loaded, loaded_history, loaded_seq) = load_with_history(&bytes).expect("clean load");
    let round_trip_identical = save_with_history(&loaded, &loaded_history, loaded_seq) == bytes;

    let recovered = recover(&base_snapshot, wal.bytes()).expect("clean recovery");
    let replay_exact = recovered.wal_error.is_none()
        && recovered.network.probabilities() == pn.probabilities()
        && recovered.history == history;

    let save_ms = min_ms(iters, || drop(save_with_history(&pn, &history, applied_seq)));
    let load_ms = min_ms(iters, || drop(load_with_history(&bytes).expect("clean load")));
    let replay_ms =
        min_ms(iters, || drop(recover(&base_snapshot, wal.bytes()).expect("clean recovery")));

    PersistPoint {
        groups,
        candidates: pn.network().candidate_count(),
        components: pn.shard_count(),
        wal_events: history.len(),
        snapshot_bytes: bytes.len(),
        wal_bytes: wal.bytes().len(),
        round_trip_identical,
        replay_exact,
        save_ms,
        load_ms,
        replay_ms,
    }
}

/// Measures all [`GROUPS`].
pub fn measure(iters: usize) -> Vec<PersistPoint> {
    GROUPS.iter().map(|&g| measure_point(g, iters)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_point_certifies_the_round_trip() {
        let p = measure_point(4, 1);
        assert!(p.round_trip_identical, "save∘load must be the identity on bytes");
        assert!(p.replay_exact, "recovery must reproduce the live run bit for bit");
        assert!(p.wal_events > 0 && p.wal_bytes > 0 && p.snapshot_bytes > 0);
    }
}
