//! Fig. 10 — effect of the ordering strategy on instantiation quality (BP).
//!
//! For effort budgets 0–15%, reconciles with Random vs information-gain
//! ordering, instantiates with Algorithm 2, and reports precision and
//! recall of the instantiated matching `H` against the selective matching,
//! averaged over repeated runs.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_fig10 [-- --runs N]`

use serde::Serialize;
use smn_bench::{matched_network, parallel_runs, save_json, standard_sampler, MatcherKind, Table};
use smn_core::reconcile::reconcile;
use smn_core::selection::{InformationGainSelection, RandomSelection, SelectionStrategy};
use smn_core::{
    GroundTruthOracle, InstantiationConfig, PrecisionRecall, ProbabilisticNetwork,
    ReconciliationGoal,
};

#[derive(Serialize)]
struct Point {
    strategy: &'static str,
    effort_percent: f64,
    precision: f64,
    recall: f64,
}

fn main() {
    let runs: u64 = std::env::args()
        .skip_while(|a| a != "--runs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let dataset = smn_datasets::bp(1);
    let graph = dataset.complete_graph();
    let (network, truth) = matched_network(&dataset, &graph, MatcherKind::Coma);
    let n = network.candidate_count();
    eprintln!("BP network: |C| = {n}, |M| = {}, runs = {runs}", truth.len());
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);

    let efforts = [0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15];
    let mut results: Vec<Point> = Vec::new();
    for heuristic in [false, true] {
        let label: &'static str = if heuristic { "heuristic" } else { "random" };
        for &effort in &efforts {
            let budget = (effort * n as f64).round() as usize;
            let qualities = parallel_runs(runs, threads, |seed| {
                let mut pn = ProbabilisticNetwork::new(network.clone(), standard_sampler(seed));
                let mut strategy: Box<dyn SelectionStrategy> = if heuristic {
                    Box::new(InformationGainSelection::new(seed))
                } else {
                    Box::new(RandomSelection::new(seed))
                };
                let mut oracle = GroundTruthOracle::new(truth.iter().copied());
                reconcile(
                    &mut pn,
                    strategy.as_mut(),
                    &mut oracle,
                    ReconciliationGoal::Budget(budget),
                );
                let inst = smn_core::instantiate::instantiate(
                    &pn,
                    InstantiationConfig { seed, ..Default::default() },
                );
                PrecisionRecall::of_instance(pn.network(), &inst.instance, truth.iter().copied())
            });
            let precision =
                qualities.iter().map(|q| q.precision).sum::<f64>() / qualities.len() as f64;
            let recall = qualities.iter().map(|q| q.recall).sum::<f64>() / qualities.len() as f64;
            results.push(Point {
                strategy: label,
                effort_percent: effort * 100.0,
                precision,
                recall,
            });
            eprintln!("done: {label} @ {:.1}%", effort * 100.0);
        }
    }

    let mut table =
        Table::new(["effort %", "Prec random", "Prec heuristic", "Rec random", "Rec heuristic"]);
    for (i, &effort) in efforts.iter().enumerate() {
        let r = &results[i];
        let h = &results[efforts.len() + i];
        table.row([
            format!("{:.1}", effort * 100.0),
            format!("{:.3}", r.precision),
            format!("{:.3}", h.precision),
            format!("{:.3}", r.recall),
            format!("{:.3}", h.recall),
        ]);
    }
    println!("Fig. 10 — instantiation quality vs ordering strategy (BP, {runs} runs)");
    println!("(paper: heuristic outperforms random by ≈0.12 precision / ≈0.08 recall on average)");
    table.print();

    let avg = |f: fn(&Point) -> f64, strategy: &str| {
        let v: Vec<f64> = results
            .iter()
            .filter(|p| p.strategy == strategy && p.effort_percent > 0.0)
            .map(f)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!(
        "\naverage gap (heuristic − random): precision {:+.3}, recall {:+.3}",
        avg(|p| p.precision, "heuristic") - avg(|p| p.precision, "random"),
        avg(|p| p.recall, "heuristic") - avg(|p| p.recall, "random"),
    );
    if let Ok(p) = save_json("fig10", &results) {
        println!("wrote {}", p.display());
    }
}
