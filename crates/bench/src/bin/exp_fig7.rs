//! Fig. 7 — sampling effectiveness in terms of K-L divergence.
//!
//! For `|C| = 10 … 20` builds networks small enough to enumerate exactly,
//! estimates probabilities with `2^{|C|/2}` sampler emissions (the paper's
//! budget), and reports `KL_ratio = D(P‖Q) / D(P‖U)` in percent, averaged
//! over several settings — `U` being the maximum-entropy baseline
//! (`u_c = 0.5`). The paper reports ratios below 2%.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_fig7`

use serde::Serialize;
use smn_bench::{save_json, Table};
use smn_constraints::ConstraintConfig;
use smn_core::exact::exact_probabilities;
use smn_core::feedback::Feedback;
use smn_core::{kl_ratio, MatchingNetwork, ProbabilisticNetwork, SamplerConfig};
use smn_schema::{AttributeId, CandidateSet, CatalogBuilder, InteractionGraph};

/// Builds a network with exactly `n_corr` candidates over three schemas:
/// identity ("true") pairs first, then seeded *hard confusions* that share
/// an endpoint with an identity pair — exactly the shape real matcher
/// top-k output has (and what makes the probabilities skew away from ½,
/// cf. Fig. 8, so the uniform baseline is a meaningful denominator).
fn network_with(n_corr: usize, m: usize, seed: u64) -> MatchingNetwork {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut b = CatalogBuilder::new();
    for s in 0..3 {
        b.add_schema_with_attributes(format!("s{s}"), (0..m).map(|i| format!("a{s}_{i}"))).unwrap();
    }
    let catalog = b.build();
    let graph = InteractionGraph::complete(3);
    let mut cs = CandidateSet::new(&catalog);
    let attr = |s: usize, i: usize| AttributeId::from_index(s * m + i);
    let edges = [(0usize, 1usize), (1, 2), (0, 2)];
    // identity pairs for roughly half the budget
    let mut added = 0usize;
    'identity: for i in 0..m {
        for &(s1, s2) in &edges {
            if added >= n_corr / 2 {
                break 'identity;
            }
            cs.add(&catalog, Some(&graph), attr(s1, i), attr(s2, i), 0.8).expect("valid pair");
            added += 1;
        }
    }
    // endpoint-sharing confusions for the rest
    let mut rng = StdRng::seed_from_u64(seed);
    let mut guard = 0;
    while added < n_corr {
        guard += 1;
        assert!(guard < 10_000, "confusion generation stuck");
        let (s1, s2) = edges[rng.random_range(0..edges.len())];
        let i = rng.random_range(0..m);
        let j = rng.random_range(0..m);
        if i == j {
            continue;
        }
        // (a_i of s1) — (b_j of s2): 1-1 conflict with identity pair i
        let (a, b2) = if rng.random_bool(0.5) {
            (attr(s1, i), attr(s2, j))
        } else {
            (attr(s1, j), attr(s2, i))
        };
        if cs.find(a, b2).is_none() {
            cs.add(&catalog, Some(&graph), a, b2, 0.5).expect("valid pair");
            added += 1;
        }
    }
    assert_eq!(cs.len(), n_corr);
    MatchingNetwork::new(catalog, graph, cs, ConstraintConfig::default())
}

#[derive(Serialize)]
struct Point {
    candidates: usize,
    samples_budget: usize,
    instances: usize,
    kl_ratio_percent: f64,
}

fn main() {
    const SETTINGS: u64 = 5;
    let mut table =
        Table::new(["#Correspondences", "2^{|C|/2} samples", "#instances", "KL ratio (%)"]);
    let mut points = Vec::new();
    for n_corr in 10..=20usize {
        let budget = 1usize << (n_corr / 2);
        let mut ratio_sum = 0.0;
        let mut instances = 0usize;
        for seed in 0..SETTINGS {
            let network = network_with(n_corr, 5, 100 + seed);
            let exact = exact_probabilities(&network, &Feedback::new(n_corr), 10_000_000)
                .expect("enumerable at this size");
            instances +=
                smn_core::exact::enumerate_instances(&network, &Feedback::new(n_corr), 10_000_000)
                    .expect("enumerable")
                    .len();
            let pn = ProbabilisticNetwork::new(
                network,
                SamplerConfig {
                    n_samples: budget,
                    walk_steps: 10,
                    n_min: 1, // fixed budget — no refill loop
                    seed,
                    anneal: true,
                    chains: smn_bench::sampling_chains(),
                },
            );
            // add-half smoothing at the sampling resolution: a candidate
            // absent from every discovered instance gets q = 0.5/(S+1)
            // rather than 0 (which would make the divergence degenerate)
            let s = pn.samples().len() as f64;
            let q: Vec<f64> =
                pn.probabilities().iter().map(|&p| (p * s + 0.5) / (s + 1.0)).collect();
            ratio_sum += kl_ratio(&exact, &q);
        }
        let ratio = 100.0 * ratio_sum / SETTINGS as f64;
        let instances = instances / SETTINGS as usize;
        table.row([
            n_corr.to_string(),
            budget.to_string(),
            instances.to_string(),
            format!("{ratio:.3}"),
        ]);
        points.push(Point {
            candidates: n_corr,
            samples_budget: budget,
            instances,
            kl_ratio_percent: ratio,
        });
    }
    println!("Fig. 7 — sampling effectiveness (K-L ratio vs exact distribution)");
    println!("(paper: ratio stays below 2% for 10–20 correspondences)");
    table.print();
    if let Ok(p) = save_json("fig7", &points) {
        println!("\nwrote {}", p.display());
    }
}
