//! Single-node speed ceiling: hot paths vs the PR-2 optimized baseline,
//! batched what-if evaluation vs the per-candidate loop, and federation
//! scale points up to `|C| ≈ 10⁴` — the numbers checked in as
//! `BENCH_speed.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_speed -- [label]`
//! (`SMN_BENCH_FAST=1` drops repetitions).

use smn_bench::speed::measure;
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    // single-core container timings are noisy; a high repetition count
    // with min-over-iters filters scheduler interference out (every timed
    // quantity here is at most a few ms, so 25 repetitions stay cheap)
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 25 };
    let report = measure(iters);

    let mut table = Table::new([
        "|C|",
        "fill (ms)",
        "vs PR2",
        "gains (ms)",
        "vs PR2",
        "assert (ms)",
        "vs PR2",
        "deterministic",
    ]);
    for p in &report.hotpaths {
        table.row([
            p.hotpaths.candidates.to_string(),
            format!("{:.3}", p.hotpaths.sampling_fill_ms),
            format!("{:.2}x", p.speedup_fill),
            format!("{:.3}", p.hotpaths.information_gains_ms),
            format!("{:.2}x", p.speedup_gains),
            format!("{:.3}", p.hotpaths.assert_candidate_ms),
            format!("{:.2}x", p.speedup_assert),
            p.hotpaths.deterministic.to_string(),
        ]);
    }
    println!("Hot paths vs the PR-2 optimized baseline");
    table.print();

    let w = &report.what_if;
    println!(
        "\nBatched what-if ({} queries, {} candidates, {} shards): \
         per-candidate {:.3} ms, batched {:.3} ms ({:.1}x), max |delta| {:.2e}",
        w.queries,
        w.candidates,
        w.components,
        w.per_candidate_ms,
        w.batched_ms,
        w.speedup_batch,
        w.max_abs_delta,
    );

    let mut table = Table::new([
        "groups",
        "|C|",
        "shards",
        "largest",
        "build (ms)",
        "assert (ms)",
        "gains (ms)",
        "gain scan (us/cand)",
        "deterministic",
    ]);
    for p in &report.federation {
        table.row([
            p.groups.to_string(),
            p.candidates.to_string(),
            p.components.to_string(),
            p.largest_component.to_string(),
            format!("{:.3}", p.build_ms),
            format!("{:.4}", p.assert_ms),
            format!("{:.3}", p.gains_ms),
            format!("{:.3}", p.gain_scan_per_candidate_us),
            p.deterministic.to_string(),
        ]);
    }
    println!("\nFederation scale (sharded; per-assert and per-gain-scan track component size)");
    table.print();

    for p in &report.hotpaths {
        assert!(p.hotpaths.deterministic, "sampling fill must be bit-deterministic per seed");
    }
    assert!(report.what_if.equivalent, "what_if_batch must match what_if to 1e-12");
    for p in &report.federation {
        assert!(p.deterministic, "sharded posteriors must be bit-deterministic per seed");
    }

    if let Ok(path) = save_json(&format!("speed_{label}"), &report) {
        println!("\nwrote {}", path.display());
    }
}
