//! Durability costs: snapshot save/load and write-ahead-log replay on the
//! 12- and 24-cluster federation presets.
//!
//! For each size, a deterministic assertion run is journaled into a WAL;
//! the bin then times encoding the end-state snapshot, decoding it back
//! into a ready network, and full crash recovery (initial snapshot + log
//! replay), certifying alongside the numbers that the round trip is
//! byte-identical and the recovery bit-exact. The numbers are checked in
//! as `BENCH_persist.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_persist -- [label]`
//! (`SMN_BENCH_FAST=1` drops repetitions).

use smn_bench::persist::measure;
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 5 };
    let points = measure(iters);

    let mut table = Table::new([
        "groups",
        "|C|",
        "shards",
        "events",
        "snapshot (B)",
        "wal (B)",
        "save (ms)",
        "load (ms)",
        "replay (ms)",
    ]);
    for p in &points {
        table.row([
            p.groups.to_string(),
            p.candidates.to_string(),
            p.components.to_string(),
            p.wal_events.to_string(),
            p.snapshot_bytes.to_string(),
            p.wal_bytes.to_string(),
            format!("{:.4}", p.save_ms),
            format!("{:.4}", p.load_ms),
            format!("{:.4}", p.replay_ms),
        ]);
    }
    println!("Durability: snapshot save/load and WAL replay (federation scenario)");
    table.print();
    for p in &points {
        assert!(p.round_trip_identical, "save∘load must be byte-identity (groups {})", p.groups);
        assert!(p.replay_exact, "recovery must equal the live run (groups {})", p.groups);
    }

    if let Ok(path) = save_json(&format!("persist_{label}"), &points) {
        println!("\nwrote {}", path.display());
    }
}
