//! Concurrent multi-worker reconciliation on the federation scenario:
//! the crowd grid (worker count × error rate × redundancy, with
//! precision/recall vs user-effort curves echoing the Fig. 7 methodology)
//! plus the fork/commit snapshot costs checked in as
//! `BENCH_service.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_service -- [label]`
//! (`SMN_BENCH_FAST=1` shrinks the federation and drops repetitions).

use serde::Serialize;
use smn_bench::service::{measure, ServiceBench};
use smn_bench::sharding::federation_case;
use smn_bench::{save_json, Table};
use smn_core::shard::ShardingConfig;
use smn_core::ReconciliationGoal;
use smn_core::SamplerConfig;
use smn_datasets::mixed_crowd;
use smn_service::{Aggregation, ReconciliationService, RoundStats, ServiceConfig};

/// One crowd-grid cell.
#[derive(Debug, Clone, Serialize)]
struct GridCell {
    scenario: String,
    workers: usize,
    redundancy: usize,
    aggregation: String,
    uniform_error_rate: Option<f64>,
    commits: usize,
    questions: u64,
    final_entropy: f64,
    final_effort: f64,
    final_precision: f64,
    final_recall: f64,
    /// Per-round (effort, precision, recall) curve.
    rounds: Vec<RoundStats>,
}

#[derive(Debug, Clone, Serialize)]
struct ServiceExperiment {
    groups: usize,
    candidates: usize,
    grid: Vec<GridCell>,
    bench: ServiceBench,
}

fn sampler(seed: u64) -> SamplerConfig {
    SamplerConfig { n_samples: 400, walk_steps: 4, n_min: 150, seed, anneal: true, chains: 1 }
}

fn run_cell(
    scenario: &str,
    net: &smn_core::MatchingNetwork,
    truth: &[smn_schema::Correspondence],
    error_rates: Vec<f64>,
    redundancy: usize,
    aggregation: Aggregation,
    uniform: Option<f64>,
) -> GridCell {
    let workers = error_rates.len();
    let mut svc = ReconciliationService::new(
        net.clone(),
        truth.to_vec(),
        error_rates,
        ServiceConfig {
            sampler: sampler(3),
            sharding: ShardingConfig::default(),
            redundancy,
            aggregation,
            threads: 0,
            scheduler: smn_service::Scheduler::Pool,
            seed: 17,
            goal: ReconciliationGoal::Complete,
        },
    );
    let report = svc.run();
    // thin the effort/quality curve to ≤ 12 evenly spaced points (first
    // and last kept: ≤ 11 stride multiples plus the final round) so the
    // checked-in JSON stays compact
    let rounds = {
        let n = report.rounds.len();
        let stride = n.div_ceil(11).max(1);
        report
            .rounds
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0 || *i == n - 1)
            .map(|(_, r)| r.clone())
            .collect()
    };
    GridCell {
        scenario: scenario.to_string(),
        workers,
        redundancy,
        aggregation: report.aggregation.clone(),
        uniform_error_rate: uniform,
        commits: report.commits.len(),
        questions: report.questions_asked,
        final_entropy: report.final_entropy,
        final_effort: report.final_effort,
        final_precision: report.final_precision,
        final_recall: report.final_recall,
        rounds,
    }
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let fast = std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1");
    let (groups, iters) = if fast { (4, 1) } else { (12, 5) };
    let (net, truth) = federation_case(groups, 7);

    let mut grid: Vec<GridCell> = Vec::new();
    // redundancy sweep: a fixed noisy crowd, k growing, both aggregations
    for &k in &[1usize, 3, 6] {
        for aggregation in [Aggregation::Majority, Aggregation::QualityWeighted] {
            if k == 1 && aggregation == Aggregation::QualityWeighted {
                continue; // one vote aggregates identically either way
            }
            grid.push(run_cell(
                "redundancy",
                &net,
                &truth,
                vec![0.25; 6],
                k,
                aggregation,
                Some(0.25),
            ));
        }
    }
    // error-rate sweep at fixed redundancy 3
    for &e in &[0.05f64, 0.15, 0.25, 0.35] {
        grid.push(run_cell(
            "error-rate",
            &net,
            &truth,
            vec![e; 6],
            3,
            Aggregation::Majority,
            Some(e),
        ));
    }
    // worker-scale sweep: perfect crowd, k = 1 (pure parallel validation)
    for &w in &[1usize, 2, 4, 8] {
        grid.push(run_cell(
            "scale",
            &net,
            &truth,
            vec![0.0; w],
            1,
            Aggregation::Majority,
            Some(0.0),
        ));
    }
    // the mixed crowd preset: reliable/noisy mixture, quality weighting vs majority
    for aggregation in [Aggregation::Majority, Aggregation::QualityWeighted] {
        grid.push(run_cell("mixed-crowd", &net, &truth, mixed_crowd(6, 9), 3, aggregation, None));
    }

    let mut table = Table::new([
        "scenario",
        "W",
        "k",
        "aggregation",
        "error",
        "commits",
        "questions",
        "precision",
        "recall",
        "H final",
    ]);
    for c in &grid {
        table.row([
            c.scenario.clone(),
            c.workers.to_string(),
            c.redundancy.to_string(),
            c.aggregation.clone(),
            c.uniform_error_rate.map_or_else(|| "mixed".into(), |e| format!("{e:.2}")),
            c.commits.to_string(),
            c.questions.to_string(),
            format!("{:.3}", c.final_precision),
            format!("{:.3}", c.final_recall),
            format!("{:.3}", c.final_entropy),
        ]);
    }
    println!("Concurrent multi-worker reconciliation ({groups}-cluster federation)");
    table.print();

    let bench = measure(iters);
    let mut perf = Table::new([
        "groups",
        "|C|",
        "shards",
        "samples",
        "fork (us)",
        "what_if (us)",
        "CoW assert (ms)",
        "owned assert (ms)",
    ]);
    for p in &bench.forking {
        perf.row([
            p.groups.to_string(),
            p.candidates.to_string(),
            p.shards.to_string(),
            p.distinct_samples.to_string(),
            format!("{:.1}", p.sharded_fork_us),
            format!("{:.1}", p.sharded_what_if_us),
            format!("{:.4}", p.sharded_first_assert_cow_ms),
            format!("{:.4}", p.sharded_owned_assert_ms),
        ]);
    }
    println!("\nSnapshot costs (sharded representation)");
    perf.print();
    let mut tp =
        Table::new(["workers", "k", "commits", "questions", "elapsed (ms)", "questions/s"]);
    for p in &bench.throughput {
        tp.row([
            p.workers.to_string(),
            p.redundancy.to_string(),
            p.commits.to_string(),
            p.questions.to_string(),
            format!("{:.1}", p.elapsed_ms),
            format!("{:.0}", p.questions as f64 / (p.elapsed_ms / 1e3)),
        ]);
    }
    println!("\nService throughput (24-cluster federation, full-crowd voting k = W)");
    tp.print();

    let experiment = ServiceExperiment { groups, candidates: net.candidate_count(), grid, bench };
    if let Ok(path) = save_json(&format!("service_{label}"), &experiment) {
        println!("\nwrote {}", path.display());
    }
}
