//! Hot-path timing snapshot feeding `BENCH_hotpaths.json`.
//!
//! Measures the three Algorithm 1 inner loops (sampling fill, batch
//! information gain, per-assertion maintenance) on the standard bench
//! sizes and writes `results/hotpaths_<label>.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin bench_hotpaths -- <label>`
//! (label defaults to `run`; `SMN_BENCH_FAST=1` drops repetitions).

use smn_bench::hotpaths::measure;
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 5 };
    let points = measure(iters);

    let mut table = Table::new([
        "|C|",
        "samples",
        "fill (ms)",
        "info-gains (ms)",
        "assert (ms)",
        "deterministic",
    ]);
    for p in &points {
        table.row([
            p.candidates.to_string(),
            p.distinct_samples.to_string(),
            format!("{:.3}", p.sampling_fill_ms),
            format!("{:.3}", p.information_gains_ms),
            format!("{:.3}", p.assert_candidate_ms),
            p.deterministic.to_string(),
        ]);
    }
    table.print();

    let path = save_json(&format!("hotpaths_{label}"), &points).expect("write results");
    println!("\nwrote {}", path.display());
}
