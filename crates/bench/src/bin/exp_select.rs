//! Incremental gain-cache selection: per-question selection cost of the
//! cached argmax against the fresh full scan on sharded federations up
//! to `|C| ≈ 10⁴`, every point self-certifying that both paths asked
//! the identical questions — the numbers checked in as
//! `BENCH_select.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_select -- [label]`
//! (`SMN_BENCH_FAST=1` drops repetitions).

use smn_bench::select::measure;
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    // min-over-iters filters scheduler noise; the fresh side re-prices
    // the whole pool per question, so repetitions are capped lower than
    // exp_speed's to keep the |C| ≈ 10⁴ point affordable
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 5 };
    let report = measure(iters);

    let mut table = Table::new([
        "groups",
        "|C|",
        "shards",
        "questions",
        "fresh (ms/q)",
        "cached (ms/q)",
        "speedup",
        "identical traces",
    ]);
    for p in &report.points {
        table.row([
            p.groups.to_string(),
            p.candidates.to_string(),
            p.components.to_string(),
            p.questions.to_string(),
            format!("{:.3}", p.fresh_per_question_ms),
            format!("{:.3}", p.cached_per_question_ms),
            format!("{:.1}x", p.speedup),
            p.identical_traces.to_string(),
        ]);
    }
    println!("Cached vs fresh-scan selection (per-question cost over {} questions)", {
        report.points.first().map_or(0, |p| p.questions)
    });
    table.print();

    for p in &report.points {
        assert!(
            p.identical_traces,
            "groups={}: the gain cache changed the question trace",
            p.groups
        );
    }

    if let Ok(path) = save_json(&format!("select_{label}"), &report) {
        println!("\nwrote {}", path.display());
    }
}
