//! Fig. 6 — effect of network size on the computation time of probability
//! estimation.
//!
//! For candidate-set sizes 2^7 … 2^12, builds Erdős–Rényi interaction
//! graphs (as in §VI-B), generates calibrated candidates, and measures the
//! average wall time per emitted sample over 1000 samples, averaged over
//! several graph settings per size.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_fig6`

use serde::Serialize;
use smn_bench::{save_json, Table};
use smn_constraints::ConstraintConfig;
use smn_core::feedback::Feedback;
use smn_core::sampling::{SampleStore, SamplerConfig};
use smn_core::MatchingNetwork;
use smn_matchers::{matcher::match_network, PerturbationMatcher};
use smn_schema::{AttributeId, CatalogBuilder, Correspondence, InteractionGraph};
use std::time::Instant;

/// Builds a network with roughly `target` candidates: `n_schemas` of
/// `m` attributes on an ER graph whose edge count scales with the target.
fn er_network(target: usize, setting_seed: u64) -> MatchingNetwork {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let m = 20usize;
    // candidates per edge ≈ m · recall/precision ≈ 20 · 1.31
    let per_edge = (m as f64 * 0.85 / 0.65).round() as usize;
    let edges_needed = target.div_ceil(per_edge);
    // pick n so the complete graph has ~2× the edges we need, then thin
    let n = (((2.0 * edges_needed as f64 * 2.0).sqrt()).ceil() as usize).max(3);
    let p = edges_needed as f64 / (n * (n - 1) / 2) as f64;
    let mut rng = StdRng::seed_from_u64(setting_seed);
    let graph = InteractionGraph::erdos_renyi(n, p.min(1.0), &mut rng);

    let mut b = CatalogBuilder::new();
    for s in 0..n {
        b.add_schema_with_attributes(format!("s{s}"), (0..m).map(|i| format!("a{s}_{i}"))).unwrap();
    }
    let catalog = b.build();
    let mut truth = Vec::new();
    for &(s1, s2) in graph.edges() {
        for i in 0..m {
            truth.push(Correspondence::new(
                AttributeId::from_index(s1.index() * m + i),
                AttributeId::from_index(s2.index() * m + i),
            ));
        }
    }
    let matcher = PerturbationMatcher::new(truth.iter().copied(), 0.65, 0.85, setting_seed);
    let candidates = match_network(&matcher, &catalog, &graph).expect("valid candidates");
    MatchingNetwork::new(catalog, graph, candidates, ConstraintConfig::default())
}

#[derive(Serialize)]
struct Point {
    target_candidates: usize,
    mean_candidates: f64,
    micros_per_sample: f64,
}

fn main() {
    const SAMPLES: usize = 1000;
    const SETTINGS: u64 = 3;
    // `SMN_CHAINS=k` runs k parallel walk chains per fill (deterministic
    // chain-order merge, announced on stderr); the default measures the
    // paper's single chain.
    let chains = smn_bench::sampling_chains();
    let mut table = Table::new(["#Correspondences", "time/sample (ms)", "|C| measured"]);
    let mut points = Vec::new();
    for exp in 7..=12u32 {
        let target = 1usize << exp;
        let mut total_micros = 0.0;
        let mut total_c = 0usize;
        for setting in 0..SETTINGS {
            let network = er_network(target, 1000 * exp as u64 + setting);
            total_c += network.candidate_count();
            let feedback = Feedback::new(network.candidate_count());
            let config = SamplerConfig {
                n_samples: SAMPLES,
                walk_steps: 4,
                n_min: 1, // single pass: time exactly `SAMPLES` emissions
                seed: setting,
                anneal: true,
                chains,
            };
            let t = Instant::now();
            let store = SampleStore::new(&network, &feedback, config);
            let elapsed = t.elapsed();
            std::hint::black_box(store.len());
            total_micros += elapsed.as_secs_f64() * 1e6 / SAMPLES as f64;
        }
        let micros = total_micros / SETTINGS as f64;
        let mean_c = total_c as f64 / SETTINGS as f64;
        table.row([target.to_string(), format!("{:.4}", micros / 1000.0), format!("{mean_c:.0}")]);
        points.push(Point {
            target_candidates: target,
            mean_candidates: mean_c,
            micros_per_sample: micros,
        });
        eprintln!("done: 2^{exp}");
    }
    println!("Fig. 6 — probability-estimation time per sample vs network size");
    println!("(paper: ≈2 ms/sample at 4096 correspondences on 2010s hardware)");
    table.print();
    if let Ok(p) = save_json("fig6", &points) {
        println!("\nwrote {}", p.display());
    }
}
