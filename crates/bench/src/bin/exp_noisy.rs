//! Extension experiment — reconciliation with *imperfect* experts.
//!
//! The paper assumes assertions are always right (§II-B) and points to
//! multi-user extensions in its conclusion. This experiment quantifies
//! both directions on the BP network: a single expert with error rate
//! `e ∈ {0, 5, 10, 20}%`, and a 5-worker majority crowd at the same error
//! rates. Reports the instantiated matching quality after a 15% effort
//! budget with information-gain ordering.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_noisy [-- --runs N]`

use serde::Serialize;
use smn_bench::{matched_network, parallel_runs, save_json, standard_sampler, MatcherKind, Table};
use smn_core::reconcile::reconcile;
use smn_core::selection::{InformationGainSelection, SelectionStrategy};
use smn_core::{
    CrowdOracle, InstantiationConfig, NoisyOracle, Oracle, PrecisionRecall, ProbabilisticNetwork,
    ReconciliationGoal,
};

#[derive(Serialize)]
struct Point {
    expert: &'static str,
    error_rate_percent: f64,
    precision: f64,
    recall: f64,
    f1: f64,
}

fn main() {
    let runs: u64 = std::env::args()
        .skip_while(|a| a != "--runs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let dataset = smn_datasets::bp(1);
    let graph = dataset.complete_graph();
    let (network, truth) = matched_network(&dataset, &graph, MatcherKind::Coma);
    let n = network.candidate_count();
    let budget = (0.15 * n as f64).round() as usize;
    eprintln!("BP network: |C| = {n}, budget = {budget}, runs = {runs}");
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);

    let mut results = Vec::new();
    let mut table = Table::new(["expert", "error %", "precision", "recall", "F1"]);
    for (expert, workers) in [("single", 1usize), ("crowd-5", 5)] {
        for error in [0.0, 0.05, 0.10, 0.20] {
            let qualities = parallel_runs(runs, threads, |seed| {
                let mut pn = ProbabilisticNetwork::new(network.clone(), standard_sampler(seed));
                let mut strategy: Box<dyn SelectionStrategy> =
                    Box::new(InformationGainSelection::new(seed));
                let mut oracle: Box<dyn Oracle> = if workers == 1 {
                    Box::new(NoisyOracle::new(truth.iter().copied(), error, seed))
                } else {
                    Box::new(CrowdOracle::new(truth.iter().copied(), workers, error, seed))
                };
                reconcile(
                    &mut pn,
                    strategy.as_mut(),
                    oracle.as_mut(),
                    ReconciliationGoal::Budget(budget),
                );
                let inst = smn_core::instantiate::instantiate(
                    &pn,
                    InstantiationConfig { seed, ..Default::default() },
                );
                PrecisionRecall::of_instance(pn.network(), &inst.instance, truth.iter().copied())
            });
            let precision =
                qualities.iter().map(|q| q.precision).sum::<f64>() / qualities.len() as f64;
            let recall = qualities.iter().map(|q| q.recall).sum::<f64>() / qualities.len() as f64;
            let f1 = qualities.iter().map(|q| q.f1()).sum::<f64>() / qualities.len() as f64;
            table.row([
                expert.to_string(),
                format!("{:.0}", error * 100.0),
                format!("{precision:.3}"),
                format!("{recall:.3}"),
                format!("{f1:.3}"),
            ]);
            results.push(Point {
                expert,
                error_rate_percent: error * 100.0,
                precision,
                recall,
                f1,
            });
            eprintln!("done: {expert} @ {:.0}%", error * 100.0);
        }
    }
    println!("Extension — imperfect experts (BP, 15% effort, IG ordering, {runs} runs)");
    println!("(not in the paper; §VIII motivates multi-user extensions)");
    table.print();
    if let Ok(p) = save_json("noisy", &results) {
        println!("\nwrote {}", p.display());
    }
}
