//! Fig. 8 — relation between probability and correctness of
//! correspondences (BP dataset).
//!
//! Builds the BP network with the COMA-like matcher, estimates
//! probabilities with 1000 samples, and prints the histogram of
//! probability values split into correct (∈ M) and incorrect (∉ M)
//! candidates — frequencies in percent of `|C|`, ten buckets.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_fig8`

use serde::Serialize;
use smn_bench::{matched_network, save_json, standard_sampler, MatcherKind, Table};
use smn_core::ProbabilisticNetwork;
use std::collections::HashSet;

#[derive(Serialize)]
struct Bucket {
    lo: f64,
    hi: f64,
    correct_percent: f64,
    incorrect_percent: f64,
}

fn main() {
    let dataset = smn_datasets::bp(1);
    let graph = dataset.complete_graph();
    let (network, truth) = matched_network(&dataset, &graph, MatcherKind::Coma);
    let truth_set: HashSet<_> = truth.iter().copied().collect();
    let n = network.candidate_count();
    let pn = ProbabilisticNetwork::new(network, standard_sampler(1));

    let mut correct = [0usize; 10];
    let mut incorrect = [0usize; 10];
    for (i, &p) in pn.probabilities().iter().enumerate() {
        let bucket = ((p * 10.0).floor() as usize).min(9);
        let corr = pn.network().corr(smn_schema::CandidateId::from_index(i));
        if truth_set.contains(&corr) {
            correct[bucket] += 1;
        } else {
            incorrect[bucket] += 1;
        }
    }

    let mut table = Table::new(["probability", "correct (%)", "incorrect (%)"]);
    let mut buckets = Vec::new();
    for b in 0..10 {
        let (lo, hi) = (b as f64 / 10.0, (b + 1) as f64 / 10.0);
        let cp = 100.0 * correct[b] as f64 / n as f64;
        let ip = 100.0 * incorrect[b] as f64 / n as f64;
        table.row([format!("[{lo:.1}, {hi:.1})"), format!("{cp:.1}"), format!("{ip:.1}")]);
        buckets.push(Bucket { lo, hi, correct_percent: cp, incorrect_percent: ip });
    }
    println!("Fig. 8 — probability vs correctness histogram (BP, COMA-like, |C| = {n})");
    println!("(paper: >75% of candidates above 0.5; correct/incorrect ratio grows with p)");
    table.print();

    // the paper's headline observation: at high probability the
    // correct:incorrect ratio is large
    let high_correct: usize = correct[8..].iter().sum();
    let high_incorrect: usize = incorrect[8..].iter().sum();
    println!(
        "\n[0.8, 1.0]: correct {:.1}% vs incorrect {:.1}%",
        100.0 * high_correct as f64 / n as f64,
        100.0 * high_incorrect as f64 / n as f64
    );
    if let Ok(p) = save_json("fig8", &buckets) {
        println!("wrote {}", p.display());
    }
}
