//! Fig. 9 — effects of heuristic ordering on uncertainty reduction (BP).
//!
//! Reproduces the paper's §VI-C experiment: complete interaction graph on
//! BP, candidates from the COMA-like matcher, ground-truth oracle, two
//! ordering strategies (Random baseline vs information-gain Heuristic).
//! Runs to 100% effort, recording normalized network uncertainty and the
//! precision of the surviving candidates `Prec(C \ F−)` on a 5% effort
//! grid, averaged over 50 runs (paper: "average result over 50 experiment
//! runs"). Pass `--runs N` to change the repetition count.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_fig9 [-- --runs N]`

use serde::Serialize;
use smn_bench::{
    matched_network, parallel_runs, save_json, standard_sampler, EffortGrid, MatcherKind, Table,
};
use smn_core::reconcile::reconcile;
use smn_core::selection::{InformationGainSelection, RandomSelection, SelectionStrategy};
use smn_core::{GroundTruthOracle, ProbabilisticNetwork, ReconciliationGoal};
use std::collections::HashSet;

#[derive(Serialize)]
struct Series {
    strategy: &'static str,
    effort_percent: Vec<f64>,
    normalized_entropy: Vec<f64>,
    precision_remaining: Vec<f64>,
}

fn main() {
    let runs: u64 = std::env::args()
        .skip_while(|a| a != "--runs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let dataset = smn_datasets::bp(1);
    let graph = dataset.complete_graph();
    let (network, truth) = matched_network(&dataset, &graph, MatcherKind::Coma);
    let truth_set: HashSet<_> = truth.iter().copied().collect();
    let n = network.candidate_count();
    eprintln!("BP network: |C| = {n}, |M| = {}, runs = {runs}", truth.len());

    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut output = Vec::new();
    let mut table = Table::new([
        "effort %",
        "H/H0 random",
        "H/H0 heuristic",
        "Prec(C\\F-) random",
        "Prec(C\\F-) heuristic",
    ]);
    let mut columns: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();

    for heuristic in [false, true] {
        let label = if heuristic { "heuristic" } else { "random" };
        let grids = parallel_runs(runs, threads, |seed| {
            let mut pn = ProbabilisticNetwork::new(network.clone(), standard_sampler(seed));
            let mut strategy: Box<dyn SelectionStrategy> = if heuristic {
                Box::new(InformationGainSelection::new(seed))
            } else {
                Box::new(RandomSelection::new(seed))
            };
            let mut oracle = GroundTruthOracle::new(truth_set.iter().copied());
            let trace =
                reconcile(&mut pn, strategy.as_mut(), &mut oracle, ReconciliationGoal::Complete);
            // entropy trajectory + precision-of-survivors trajectory
            let mut entropy_grid = EffortGrid::percent(5);
            let mut precision_grid = EffortGrid::percent(5);
            let h_traj: Vec<(f64, f64)> =
                trace.iter().map(|t| (t.effort, t.normalized_entropy)).collect();
            entropy_grid.add_run(1.0, &h_traj);
            // Prec(C \ F−): survivors = all candidates minus disapprovals
            let mut correct_total = (0..n)
                .filter(|&i| {
                    truth_set.contains(&network.corr(smn_schema::CandidateId::from_index(i)))
                })
                .count();
            let mut survivors = n;
            let p0 = correct_total as f64 / survivors as f64;
            let mut p_traj = Vec::with_capacity(trace.len());
            for t in &trace {
                if !t.approved {
                    survivors -= 1;
                    if truth_set.contains(&network.corr(t.candidate)) {
                        correct_total -= 1;
                    }
                }
                p_traj.push((t.effort, correct_total as f64 / survivors.max(1) as f64));
            }
            precision_grid.add_run(p0, &p_traj);
            (entropy_grid, precision_grid)
        });
        // average across runs
        let mut entropy_acc = EffortGrid::percent(5);
        let mut precision_acc = EffortGrid::percent(5);
        let points: Vec<f64> = entropy_acc.points().to_vec();
        let mut h_means = vec![0.0; points.len()];
        let mut p_means = vec![0.0; points.len()];
        for (hg, pg) in &grids {
            for (acc, m) in h_means.iter_mut().zip(hg.means().expect("complete run")) {
                *acc += m;
            }
            for (acc, m) in p_means.iter_mut().zip(pg.means().expect("complete run")) {
                *acc += m;
            }
        }
        for v in h_means.iter_mut().chain(p_means.iter_mut()) {
            *v /= grids.len() as f64;
        }
        let _ = (&mut entropy_acc, &mut precision_acc); // grids consumed above
        output.push(Series {
            strategy: if heuristic { "heuristic" } else { "random" },
            effort_percent: points.iter().map(|e| e * 100.0).collect(),
            normalized_entropy: h_means.clone(),
            precision_remaining: p_means.clone(),
        });
        columns.push((h_means, p_means));
        eprintln!("done: {label}");
    }

    let points: Vec<f64> = EffortGrid::percent(5).points().to_vec();
    for (i, &e) in points.iter().enumerate() {
        table.row([
            format!("{:.0}", e * 100.0),
            format!("{:.3}", columns[0].0[i]),
            format!("{:.3}", columns[1].0[i]),
            format!("{:.3}", columns[0].1[i]),
            format!("{:.3}", columns[1].1[i]),
        ]);
    }
    println!("Fig. 9 — uncertainty reduction and Prec(C \\ F−) vs user effort (BP, {runs} runs)");
    println!("(paper: heuristic reaches H≈0.1 at ~30% effort where random needs ~75%)");
    table.print();

    // headline saving: effort at which each strategy reaches H/H0 ≤ 0.1
    let reach =
        |col: &Vec<f64>| points.iter().zip(col).find(|(_, &h)| h <= 0.1).map(|(e, _)| e * 100.0);
    if let (Some(r), Some(h)) = (reach(&columns[0].0), reach(&columns[1].0)) {
        println!(
            "\neffort to reach H/H0 ≤ 0.1: random {r:.0}%, heuristic {h:.0}% → saving {:.0}%",
            r - h
        );
    }
    if let Ok(p) = save_json("fig9", &output) {
        println!("wrote {}", p.display());
    }
}
