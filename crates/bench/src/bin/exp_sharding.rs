//! Monolithic vs component-sharded probabilistic networks on the
//! multi-component federation scenario.
//!
//! For each federation size, builds both representations on the same
//! matched network, certifies that their posteriors agree (max probability
//! delta, entropy delta, determinism of the sharded fill) and reports the
//! fill / per-assertion / batch-information-gain timings side by side —
//! the numbers checked in as `BENCH_sharding.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_sharding -- [label]`
//! (`SMN_BENCH_FAST=1` drops repetitions).

use smn_bench::sharding::measure;
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 5 };
    let points = measure(iters);

    let mut table = Table::new([
        "groups",
        "|C|",
        "shards",
        "largest",
        "fill mono (ms)",
        "fill sharded (ms)",
        "assert mono (ms)",
        "assert sharded (ms)",
        "gains mono (ms)",
        "gains sharded (ms)",
        "max |Δp|",
    ]);
    for p in &points {
        table.row([
            p.groups.to_string(),
            p.candidates.to_string(),
            p.components.to_string(),
            p.largest_component.to_string(),
            format!("{:.3}", p.monolithic_fill_ms),
            format!("{:.3}", p.sharded_fill_ms),
            format!("{:.3}", p.monolithic_assert_ms),
            format!("{:.3}", p.sharded_assert_ms),
            format!("{:.3}", p.monolithic_gains_ms),
            format!("{:.3}", p.sharded_gains_ms),
            format!("{:.2e}", p.max_probability_delta),
        ]);
    }
    println!("Component-sharded vs monolithic probabilistic networks (federation scenario)");
    table.print();
    for p in &points {
        assert!(p.deterministic, "sharded fill must be bit-deterministic per seed");
    }

    if let Ok(path) = save_json(&format!("sharding_{label}"), &points) {
        println!("\nwrote {}", path.display());
    }
}
