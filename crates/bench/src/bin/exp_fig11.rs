//! Fig. 11 — effect of the likelihood criterion on instantiation (BP).
//!
//! Same protocol as Fig. 10 with information-gain ordering, comparing
//! Algorithm 2 with the likelihood tie-break enabled vs disabled.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_fig11 [-- --runs N]`

use serde::Serialize;
use smn_bench::{matched_network, parallel_runs, save_json, standard_sampler, MatcherKind, Table};
use smn_core::reconcile::reconcile;
use smn_core::selection::{InformationGainSelection, SelectionStrategy};
use smn_core::{
    GroundTruthOracle, InstantiationConfig, PrecisionRecall, ProbabilisticNetwork,
    ReconciliationGoal,
};

#[derive(Serialize)]
struct Point {
    likelihood: bool,
    effort_percent: f64,
    precision: f64,
    recall: f64,
}

fn main() {
    let runs: u64 = std::env::args()
        .skip_while(|a| a != "--runs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let dataset = smn_datasets::bp(1);
    let graph = dataset.complete_graph();
    let (network, truth) = matched_network(&dataset, &graph, MatcherKind::Coma);
    let n = network.candidate_count();
    eprintln!("BP network: |C| = {n}, |M| = {}, runs = {runs}", truth.len());
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);

    let efforts = [0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15];
    let mut results: Vec<Point> = Vec::new();
    for use_likelihood in [false, true] {
        for &effort in &efforts {
            let budget = (effort * n as f64).round() as usize;
            let qualities = parallel_runs(runs, threads, |seed| {
                let mut pn = ProbabilisticNetwork::new(network.clone(), standard_sampler(seed));
                let mut strategy: Box<dyn SelectionStrategy> =
                    Box::new(InformationGainSelection::new(seed));
                let mut oracle = GroundTruthOracle::new(truth.iter().copied());
                reconcile(
                    &mut pn,
                    strategy.as_mut(),
                    &mut oracle,
                    ReconciliationGoal::Budget(budget),
                );
                let inst = smn_core::instantiate::instantiate(
                    &pn,
                    InstantiationConfig { use_likelihood, seed, ..Default::default() },
                );
                PrecisionRecall::of_instance(pn.network(), &inst.instance, truth.iter().copied())
            });
            let precision =
                qualities.iter().map(|q| q.precision).sum::<f64>() / qualities.len() as f64;
            let recall = qualities.iter().map(|q| q.recall).sum::<f64>() / qualities.len() as f64;
            results.push(Point {
                likelihood: use_likelihood,
                effort_percent: effort * 100.0,
                precision,
                recall,
            });
            eprintln!("done: likelihood={use_likelihood} @ {:.1}%", effort * 100.0);
        }
    }

    let mut table =
        Table::new(["effort %", "Prec w/o L", "Prec with L", "Rec w/o L", "Rec with L"]);
    for (i, &effort) in efforts.iter().enumerate() {
        let without = &results[i];
        let with = &results[efforts.len() + i];
        table.row([
            format!("{:.1}", effort * 100.0),
            format!("{:.3}", without.precision),
            format!("{:.3}", with.precision),
            format!("{:.3}", without.recall),
            format!("{:.3}", with.recall),
        ]);
    }
    println!("Fig. 11 — effect of the likelihood criterion on instantiation (BP, {runs} runs)");
    println!("(paper: considering likelihood yields a matching of better quality)");
    table.print();

    let avg = |f: fn(&Point) -> f64, like: bool| {
        let v: Vec<f64> = results.iter().filter(|p| p.likelihood == like).map(f).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!(
        "\naverage gap (with − without): precision {:+.3}, recall {:+.3}",
        avg(|p| p.precision, true) - avg(|p| p.precision, false),
        avg(|p| p.recall, true) - avg(|p| p.recall, false),
    );
    if let Ok(p) = save_json("fig11", &results) {
        println!("wrote {}", p.display());
    }
}
