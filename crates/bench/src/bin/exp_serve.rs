//! Request-driven serving on the 96-cluster federation: sustained
//! answers/s and commit-lane flush latency of the event-driven
//! [`smn_service::ServingCore`] at 10⁴–10⁶ configured open-loop sessions,
//! checked in as `BENCH_serve.json`. Compare the round-mode baseline in
//! `BENCH_service.json` (`bench.throughput`): the 8-worker round loop
//! sustains ≈ 98k answers/s.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_serve -- [label]`
//! (`SMN_BENCH_FAST=1` shrinks the federation and the session sweep and
//! drops repetitions).

use smn_bench::serve::{
    measure, run_point, serve_scenario, ServeBench, BASE_SESSIONS, SESSION_SWEEP, WORKER_COUNTS,
};
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let fast = std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1");

    let bench: ServeBench = if fast {
        let (net, truth, uncertain) = serve_scenario(8);
        let points = vec![
            run_point(&net, &truth, 2, 64, uncertain, 1),
            run_point(&net, &truth, 4, 256, uncertain, 1),
        ];
        ServeBench { groups: 8, candidates: net.candidate_count(), uncertain, points }
    } else {
        measure(3)
    };

    println!(
        "serving scenario: {} clusters, |C| = {}, {} uncertain (answer capacity = uncertain × k)",
        bench.groups, bench.candidates, bench.uncertain
    );
    println!(
        "worker scan at {BASE_SESSIONS} sessions: {WORKER_COUNTS:?}; session sweep at 8 workers: {SESSION_SWEEP:?}"
    );
    let mut table = Table::new([
        "workers",
        "sessions",
        "touched",
        "events",
        "answers",
        "commits",
        "elapsed_ms",
        "answers/s",
        "flush_p99_us",
        "logical_p99",
    ]);
    for p in &bench.points {
        let rate = if p.elapsed_ms > 0.0 { p.answers as f64 / (p.elapsed_ms / 1e3) } else { 0.0 };
        table.row([
            p.workers.to_string(),
            p.sessions.to_string(),
            p.sessions_touched.to_string(),
            p.events.to_string(),
            p.answers.to_string(),
            p.commits.to_string(),
            format!("{:.3}", p.elapsed_ms),
            format!("{rate:.0}"),
            format!("{:.1}", p.commit_p99_us),
            p.logical_p99.to_string(),
        ]);
    }
    table.print();

    let path = save_json(&format!("serve_{label}"), &bench).expect("write results");
    println!("wrote {}", path.display());
}
