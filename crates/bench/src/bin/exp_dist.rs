//! Multi-process shard-server scaling on the grown federation scenario.
//!
//! Spawns 1, 2 and 4 shard-server child processes (this same binary
//! re-executed with `--shard-server`, speaking the `smn-dist` protocol
//! over loopback TCP), bootstraps a coordinator over each cluster on the
//! 240-cluster webform federation, and reports bootstrap / routed-assert
//! / batched-gains / batched-what-if timings per cluster size — the
//! numbers checked in as `BENCH_dist.json`. Every point also certifies
//! the distributed posterior equals the single-process network bitwise.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_dist -- [label]`
//! (`SMN_BENCH_FAST=1` drops repetitions; `SMN_SCRUB_TIMINGS=1` zeroes
//! the wall-clock fields so identically-seeded runs emit byte-identical
//! JSON).

use smn_bench::dist::{measure, shard_server_main};
use smn_bench::{save_json, Table};

fn main() {
    if std::env::args().any(|a| a == "--shard-server") {
        shard_server_main();
        return;
    }
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 3 };
    let points = measure(iters);

    let mut table = Table::new([
        "servers",
        "groups",
        "|C|",
        "components",
        "bootstrap (ms)",
        "assert (ms)",
        "gains (ms)",
        "what-if (ms)",
        "bit-identical",
    ]);
    for p in &points {
        table.row([
            p.servers.to_string(),
            p.groups.to_string(),
            p.candidates.to_string(),
            p.components.to_string(),
            format!("{:.3}", p.bootstrap_ms),
            format!("{:.3}", p.assert_ms),
            format!("{:.3}", p.gains_ms),
            format!("{:.3}", p.what_if_ms),
            p.bit_identical.to_string(),
        ]);
    }
    println!("Multi-process shard-server scaling (federation, {} clusters)", points[0].groups);
    table.print();
    for p in &points {
        assert!(p.bit_identical, "{} servers diverged from the single process", p.servers);
    }

    if let Ok(path) = save_json(&format!("dist_{label}"), &points) {
        println!("\nwrote {}", path.display());
    }
}
