//! Table II — dataset statistics.
//!
//! Prints `#Schemas` and `#Attributes (Min/Max)` for the four synthetic
//! dataset reproductions; the shape statistics match the paper's Table II
//! by construction.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_table2`

use serde::Serialize;
use smn_bench::{save_json, Table};

#[derive(Serialize)]
struct Row {
    dataset: String,
    schemas: usize,
    attrs_min: usize,
    attrs_max: usize,
    paper_schemas: usize,
    paper_min: usize,
    paper_max: usize,
}

fn main() {
    let seed = 1;
    let paper =
        [("BP", 3, 80, 106), ("PO", 10, 35, 408), ("UAF", 15, 65, 228), ("WebForm", 89, 10, 120)];
    let datasets = [
        smn_datasets::bp(seed),
        smn_datasets::po(seed),
        smn_datasets::uaf(seed),
        smn_datasets::webform(seed),
    ];
    let mut table = Table::new(["Dataset", "#Schemas", "#Attributes(Min/Max)", "paper"]);
    let mut rows = Vec::new();
    for (d, (pname, ps, pmin, pmax)) in datasets.iter().zip(paper) {
        let (schemas, lo, hi) = d.statistics();
        assert_eq!(d.name, pname);
        table.row([
            d.name.clone(),
            schemas.to_string(),
            format!("{lo}/{hi}"),
            format!("{ps} × {pmin}/{pmax}"),
        ]);
        rows.push(Row {
            dataset: d.name.clone(),
            schemas,
            attrs_min: lo,
            attrs_max: hi,
            paper_schemas: ps,
            paper_min: pmin,
            paper_max: pmax,
        });
    }
    println!("Table II — real datasets (synthetic reproduction, seed {seed})");
    table.print();
    if let Ok(p) = save_json("table2", &rows) {
        println!("\nwrote {}", p.display());
    }
}
