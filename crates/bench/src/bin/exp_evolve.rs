//! Incremental maintenance vs full rebuild on an evolving federation.
//!
//! For each federation size, replays the evolving scenario's
//! arrival/retirement schedule through `ProbabilisticNetwork::extend` /
//! `retire` and times, at the same states, the full rebuild a static
//! pipeline would run per event. Certifies the differential evidence
//! alongside the win: the evolved posterior equals a from-scratch build at
//! the final state (federation components are all exact), and two
//! identical histories are byte-identical. The numbers are checked in as
//! `BENCH_evolve.json`.
//!
//! Run: `cargo run --release -p smn-bench --bin exp_evolve -- [label]`
//! (`SMN_BENCH_FAST=1` drops repetitions).

use smn_bench::evolve::measure;
use smn_bench::{save_json, Table};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    let iters = if std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1") { 1 } else { 5 };
    let points = measure(iters);

    let mut table = Table::new([
        "groups",
        "pool",
        "|C| t0",
        "|C| end",
        "arrivals",
        "retire",
        "shards",
        "arrive (ms)",
        "retire (ms)",
        "rebuild (ms)",
        "speedup/arrival",
        "max |Δp|",
    ]);
    for p in &points {
        table.row([
            p.groups.to_string(),
            p.pool.to_string(),
            p.initial_candidates.to_string(),
            p.final_candidates.to_string(),
            p.arrivals.to_string(),
            p.retirements.to_string(),
            p.final_components.to_string(),
            format!("{:.4}", p.incremental_per_arrival_ms),
            format!("{:.4}", p.incremental_per_retirement_ms),
            format!("{:.4}", p.rebuild_per_event_ms),
            format!("{:.1}×", p.speedup_per_arrival),
            format!("{:.2e}", p.max_probability_delta),
        ]);
    }
    println!("Online evolution: incremental maintain vs full rebuild (federation scenario)");
    table.print();
    for p in &points {
        assert!(p.deterministic, "evolution must be bit-deterministic per seed");
        assert!(
            !p.all_exact || p.max_probability_delta < 1e-12,
            "exact shards must match the from-scratch build (groups {})",
            p.groups
        );
    }

    if let Ok(path) = save_json(&format!("evolve_{label}"), &points) {
        println!("\nwrote {}", path.display());
    }
}
