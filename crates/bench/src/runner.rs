//! Parallel execution of independent experiment repetitions.

use parking_lot::Mutex;

/// Worker threads available on this machine (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
}

/// Walk-chain count for the experiment bins: `SMN_CHAINS=k` if set (0 or
/// `auto` meaning all available cores), else 1 — the paper's single-chain
/// sampler stays the default so published numbers remain comparable.
///
/// A non-default count is announced once on stderr: multi-chain fills
/// discover a different (equally valid, still deterministic) Ω\* than the
/// single-chain walk, so runs with the knob active must be identifiable.
pub fn sampling_chains() -> usize {
    let chains = match std::env::var("SMN_CHAINS") {
        Ok(v) if v == "auto" || v == "0" => available_threads(),
        Ok(v) => v.parse().ok().filter(|&k| k >= 1).unwrap_or(1),
        Err(_) => 1,
    };
    if chains > 1 {
        static ANNOUNCED: std::sync::Once = std::sync::Once::new();
        ANNOUNCED
            .call_once(|| eprintln!("SMN_CHAINS={chains}: sampling with {chains} walk chains"));
    }
    chains
}

/// Runs `runs` seeded repetitions of `f` across `threads` worker threads
/// and returns the results ordered by seed. Determinism is preserved
/// because each repetition derives everything from its seed.
pub fn parallel_runs<T, F>(runs: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(runs as usize));
    let next: Mutex<u64> = Mutex::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(runs as usize).max(1) {
            scope.spawn(|| loop {
                let seed = {
                    let mut n = next.lock();
                    if *n >= runs {
                        break;
                    }
                    let s = *n;
                    *n += 1;
                    s
                };
                let out = f(seed);
                results.lock().push((seed, out));
            });
        }
    });
    let mut results = results.into_inner();
    results.sort_by_key(|(seed, _)| *seed);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_seed_ordered() {
        let out = parallel_runs(16, 4, |seed| seed * 2);
        assert_eq!(out, (0..16).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = parallel_runs(3, 1, |seed| seed);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn more_threads_than_runs() {
        let out = parallel_runs(2, 16, |seed| seed + 10);
        assert_eq!(out, vec![10, 11]);
    }
}
