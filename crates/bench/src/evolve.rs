//! Incremental-maintenance-vs-full-rebuild measurements behind
//! `BENCH_evolve.json`.
//!
//! The scenario is the evolving federation
//! ([`smn_datasets::EvolvingFederation`]): the matcher output over the
//! fused multi-component catalog is the candidate *pool*, a fraction of
//! which is live at t₀; the rest arrives as a deterministic stream
//! interleaved with retirements. For every event the module applies the
//! *incremental* path — [`ProbabilisticNetwork::extend`] /
//! [`ProbabilisticNetwork::retire`], which patch the conflict index from
//! the event's neighbourhood and rebuild only the merged or split shard —
//! and times, at the same network state, the *rebuild* path a static
//! pipeline would take: `ConflictIndex::build` over the whole catalog plus
//! a full `ProbabilisticNetwork::new_sharded` fill.
//!
//! Each point also records the differential evidence: the evolved
//! posterior against a from-scratch build at the final state (expected
//! within 1e-12 on the federation preset, whose components all take the
//! exact enumeration path), and whether two identical evolution histories
//! produce byte-identical probabilities.

use crate::{matched_network, MatcherKind};
use serde::Serialize;
use smn_core::{MatchingNetwork, ProbabilisticNetwork, SamplerConfig, ShardingConfig};
use smn_datasets::{ChurnEvent, EvolvingFederation, EvolvingFederationSpec, FederationSpec};
use smn_datasets::{SharingModel, Vocabulary};
use smn_schema::{CandidateId, CandidateSet, Correspondence};
use std::time::Instant;

/// Federation sizes measured (fused sub-networks); 12 is the
/// `evolving_webform_federation` preset shape.
pub const GROUPS: [usize; 3] = [4, 12, 24];

/// The evolving scenario used by the benches: the `sharding` bench
/// federation shape under a 60%-initial / 25%-churn schedule.
pub fn evolving_scenario(groups: usize, seed: u64) -> EvolvingFederation {
    EvolvingFederationSpec {
        federation: FederationSpec {
            name: format!("EvoFed{groups}"),
            vocabulary: Vocabulary::web_form(),
            groups,
            schemas_per_group: 3,
            attrs_min: 8,
            attrs_max: 14,
            sharing: SharingModel::RankBiased { alpha: 1.3 },
        },
        initial_fraction: 0.6,
        churn: 0.25,
    }
    .generate(seed)
}

/// Sampler configuration of the evolve bench (the `sharding` bench shape).
pub fn bench_sampler(seed: u64) -> SamplerConfig {
    SamplerConfig { n_samples: 400, walk_steps: 4, n_min: 150, seed, anneal: true, chains: 1 }
}

/// The candidate pool: matcher output over the full federation, in
/// candidate-id order, plus the network it came from (the end state of a
/// no-churn evolution).
pub fn candidate_pool(evo: &EvolvingFederation, seed: u64) -> Vec<(Correspondence, f64)> {
    let (net, _) = matched_network(
        &evo.federation.dataset,
        &evo.federation.graph,
        MatcherKind::perturbation(seed),
    );
    net.candidates().candidates().iter().map(|c| (c.corr, c.confidence)).collect()
}

/// One measured federation size.
#[derive(Debug, Clone, Serialize)]
pub struct EvolvePoint {
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Total matcher candidates (the pool).
    pub pool: usize,
    /// Candidates live at t₀.
    pub initial_candidates: usize,
    /// Candidates live after the full schedule.
    pub final_candidates: usize,
    /// Arrival events applied.
    pub arrivals: usize,
    /// Retirement events applied.
    pub retirements: usize,
    /// Conflict components (shards) at the final state.
    pub final_components: usize,
    /// Whether every shard of the final evolved network is exhausted
    /// (exact posteriors — the regime where `max_probability_delta` is a
    /// hard invariant).
    pub all_exact: bool,
    /// Largest absolute per-candidate probability delta between the
    /// evolved network and a from-scratch build at the final state.
    pub max_probability_delta: f64,
    /// Whether two identical evolution histories produced byte-identical
    /// probability vectors.
    pub deterministic: bool,
    /// Mean milliseconds per incremental arrival (`extend`).
    pub incremental_per_arrival_ms: f64,
    /// Mean milliseconds per incremental retirement (`retire`).
    pub incremental_per_retirement_ms: f64,
    /// Mean milliseconds to rebuild the network + sharded posterior from
    /// scratch at the same states (min over `iters` per state).
    pub rebuild_per_event_ms: f64,
    /// `rebuild_per_event_ms / incremental_per_arrival_ms` — how much an
    /// arrival saves over the static pipeline's full re-index + re-fill.
    pub speedup_per_arrival: f64,
    /// The same ratio for retirements.
    pub speedup_per_retirement: f64,
}

/// Replays the schedule on an incrementally maintained network, returning
/// the final network, the per-event incremental seconds, and — when
/// `time_rebuilds` — the per-event from-scratch rebuild seconds.
fn replay(
    evo: &EvolvingFederation,
    pool: &[(Correspondence, f64)],
    sampler: SamplerConfig,
    sharding: ShardingConfig,
    iters: usize,
    time_rebuilds: bool,
) -> (ProbabilisticNetwork, Vec<f64>, Vec<f64>, Vec<f64>) {
    let cat = &evo.federation.dataset.catalog;
    let graph = &evo.federation.graph;
    let initial = evo.initial_count(pool.len());
    let mut cs = CandidateSet::new(cat);
    for &(corr, conf) in &pool[..initial] {
        cs.add(cat, Some(graph), corr.a(), corr.b(), conf).unwrap();
    }
    let net = MatchingNetwork::new(
        cat.clone(),
        graph.clone(),
        cs,
        smn_constraints::ConstraintConfig::default(),
    );
    let mut pn = ProbabilisticNetwork::new_sharded(net, sampler, sharding);
    let mut arrivals = Vec::new();
    let mut retirements = Vec::new();
    let mut rebuilds = Vec::new();
    for event in evo.schedule(pool.len()) {
        let start = Instant::now();
        match event {
            ChurnEvent::Arrive(i) => {
                let (corr, conf) = pool[i];
                pn.extend(corr.a(), corr.b(), conf).unwrap();
                arrivals.push(start.elapsed().as_secs_f64());
            }
            ChurnEvent::Retire(i) => {
                let (corr, _) = pool[i];
                let c = pn.network().candidates().find(corr.a(), corr.b()).expect("live");
                pn.retire(c).unwrap();
                retirements.push(start.elapsed().as_secs_f64());
            }
        }
        if time_rebuilds {
            let mut best = f64::INFINITY;
            for _ in 0..iters.max(1) {
                let start = Instant::now();
                let mut cs = CandidateSet::new(cat);
                for cand in pn.network().candidates().candidates() {
                    cs.add(cat, Some(graph), cand.corr.a(), cand.corr.b(), cand.confidence)
                        .unwrap();
                }
                let net = MatchingNetwork::new(
                    cat.clone(),
                    graph.clone(),
                    cs,
                    smn_constraints::ConstraintConfig::default(),
                );
                let rebuilt = ProbabilisticNetwork::new_sharded(net, sampler, sharding);
                best = best.min(start.elapsed().as_secs_f64());
                std::hint::black_box(rebuilt);
            }
            rebuilds.push(best);
        }
    }
    (pn, arrivals, retirements, rebuilds)
}

/// Measures one federation size; `iters` timing repetitions per rebuild.
pub fn measure_point(groups: usize, iters: usize) -> EvolvePoint {
    let evo = evolving_scenario(groups, 7);
    let pool = candidate_pool(&evo, 7);
    let sampler = bench_sampler(3);
    let sharding = ShardingConfig::default();
    let schedule = evo.schedule(pool.len());
    let arrivals = schedule.iter().filter(|e| matches!(e, ChurnEvent::Arrive(_))).count();
    let retirements = schedule.len() - arrivals;

    let (pn, arrival_secs, retirement_secs, rebuilds) =
        replay(&evo, &pool, sampler, sharding, iters, true);
    let (again, _, _, _) = replay(&evo, &pool, sampler, sharding, 1, false);
    let deterministic = pn.probabilities() == again.probabilities();

    // differential referee: a from-scratch build at the final state
    let cat = &evo.federation.dataset.catalog;
    let mut cs = CandidateSet::new(cat);
    for cand in pn.network().candidates().candidates() {
        cs.add(cat, Some(&evo.federation.graph), cand.corr.a(), cand.corr.b(), cand.confidence)
            .unwrap();
    }
    let fresh = ProbabilisticNetwork::new_sharded(
        MatchingNetwork::new(
            cat.clone(),
            evo.federation.graph.clone(),
            cs,
            smn_constraints::ConstraintConfig::default(),
        ),
        sampler,
        sharding,
    );
    let max_probability_delta = pn
        .probabilities()
        .iter()
        .zip(fresh.probabilities())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);

    let mean_ms = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64 * 1e3;
    let incremental_per_arrival_ms = mean_ms(&arrival_secs);
    let incremental_per_retirement_ms = mean_ms(&retirement_secs);
    let rebuild_per_event_ms = mean_ms(&rebuilds);
    EvolvePoint {
        groups,
        pool: pool.len(),
        initial_candidates: evo.initial_count(pool.len()),
        final_candidates: pn.network().candidate_count(),
        arrivals,
        retirements,
        final_components: pn.shard_count(),
        all_exact: pn.is_exhausted() && fresh.is_exhausted(),
        max_probability_delta,
        deterministic,
        incremental_per_arrival_ms,
        incremental_per_retirement_ms,
        rebuild_per_event_ms,
        speedup_per_arrival: rebuild_per_event_ms / incremental_per_arrival_ms.max(1e-9),
        speedup_per_retirement: rebuild_per_event_ms / incremental_per_retirement_ms.max(1e-9),
    }
}

/// Measures all [`GROUPS`].
pub fn measure(iters: usize) -> Vec<EvolvePoint> {
    GROUPS.iter().map(|&g| measure_point(g, iters)).collect()
}

/// Returns [`CandidateId`]s of every live pool candidate, for callers
/// replaying schedules by hand.
pub fn live_ids(pn: &ProbabilisticNetwork) -> Vec<CandidateId> {
    (0..pn.network().candidate_count()).map(CandidateId::from_index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_point_is_deterministic_exact_and_faster_than_rebuild() {
        let p = measure_point(GROUPS[0], 1);
        assert!(p.deterministic, "same history must reproduce the posteriors");
        assert!(p.arrivals > 0 && p.retirements > 0, "the schedule must churn");
        assert_eq!(p.final_candidates, p.initial_candidates + p.arrivals - p.retirements);
        assert!(p.all_exact, "federation components stay within the exact threshold");
        assert!(
            p.max_probability_delta < 1e-12,
            "evolved posterior must equal the from-scratch build: {}",
            p.max_probability_delta
        );
        assert!(
            p.speedup_per_arrival > 1.5,
            "incremental arrival must beat rebuild-per-event: {:.2}×",
            p.speedup_per_arrival
        );
    }
}
