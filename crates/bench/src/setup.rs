//! Shared experiment setup: datasets × matchers → matching networks.

use smn_constraints::ConstraintConfig;
use smn_core::{MatchingNetwork, SamplerConfig};
use smn_datasets::Dataset;
use smn_matchers::matcher::match_network;
use smn_matchers::{ensemble, PerturbationMatcher};
use smn_schema::Correspondence;

/// Which matcher generates the candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatcherKind {
    /// COMA-like composite ensemble.
    Coma,
    /// AMC-like corpus-aware ensemble.
    Amc,
    /// Calibrated ground-truth perturbation (fast; used where the paper's
    /// experiment does not depend on a specific matcher).
    Perturbation {
        /// Target precision ×1000 (integer so the enum stays `Eq`).
        precision_milli: u32,
        /// Target recall ×1000.
        recall_milli: u32,
        /// Matcher seed.
        seed: u64,
    },
}

impl MatcherKind {
    /// Calibrated default perturbation: precision 0.65 / recall 0.85 — the
    /// candidate-quality regime the paper reports for its matchers.
    pub fn perturbation(seed: u64) -> Self {
        MatcherKind::Perturbation { precision_milli: 650, recall_milli: 850, seed }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MatcherKind::Coma => "COMA",
            MatcherKind::Amc => "AMC",
            MatcherKind::Perturbation { .. } => "perturbation",
        }
    }
}

/// Matches `dataset` on `graph` with the requested matcher and assembles
/// the matching network plus the ground truth for that graph.
pub fn matched_network(
    dataset: &Dataset,
    graph: &smn_schema::InteractionGraph,
    matcher: MatcherKind,
) -> (MatchingNetwork, Vec<Correspondence>) {
    let truth = dataset.selective_matching(graph);
    let candidates = match matcher {
        MatcherKind::Coma => match_network(&ensemble::coma_like(), &dataset.catalog, graph)
            .expect("valid matcher output"),
        MatcherKind::Amc => {
            match_network(&ensemble::amc_like(&dataset.catalog), &dataset.catalog, graph)
                .expect("valid matcher output")
        }
        MatcherKind::Perturbation { precision_milli, recall_milli, seed } => {
            let m = PerturbationMatcher::new(
                truth.iter().copied(),
                precision_milli as f64 / 1000.0,
                recall_milli as f64 / 1000.0,
                seed,
            );
            match_network(&m, &dataset.catalog, graph).expect("valid matcher output")
        }
    };
    let network = MatchingNetwork::new(
        dataset.catalog.clone(),
        graph.clone(),
        candidates,
        ConstraintConfig::default(),
    );
    (network, truth)
}

/// The sampler configuration used by the quality experiments: 1000 samples
/// as in §VI-B, refill threshold 300. Honors `SMN_CHAINS=<k|auto>` (see
/// [`sampling_chains`](crate::runner::sampling_chains)); the default of 1
/// is the paper's single-chain sampler, and multi-chain runs stay
/// deterministic for a fixed chain count.
pub fn standard_sampler(seed: u64) -> SamplerConfig {
    SamplerConfig {
        n_samples: 1000,
        walk_steps: 4,
        n_min: 300,
        seed,
        anneal: true,
        chains: crate::runner::sampling_chains(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_datasets::{DatasetSpec, SharingModel, Vocabulary};

    #[test]
    fn perturbation_setup_produces_network() {
        let d = DatasetSpec {
            name: "T".into(),
            vocabulary: Vocabulary::business_partner(),
            schema_count: 3,
            attrs_min: 10,
            attrs_max: 15,
            sharing: SharingModel::RankBiased { alpha: 0.7 },
        }
        .generate(1);
        let g = d.complete_graph();
        let (net, truth) = matched_network(&d, &g, MatcherKind::perturbation(1));
        assert!(net.candidate_count() > 0);
        assert!(!truth.is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MatcherKind::Coma.label(), "COMA");
        assert_eq!(MatcherKind::Amc.label(), "AMC");
        assert_eq!(MatcherKind::perturbation(0).label(), "perturbation");
    }
}
