//! Monolithic-vs-sharded measurements behind `BENCH_sharding.json`.
//!
//! The multi-component scenario is a federation of small sparse webform
//! networks fused into one catalog
//! ([`smn_datasets::FederationSpec`]): many independent
//! conflict clusters, no cross-cluster candidates — exactly the regime
//! where the component-sharded `ProbabilisticNetwork` turns per-assertion
//! and information-gain cost local. Per federation size this module times,
//! for both representations:
//!
//! * `fill_ms` — building the probabilistic network (initial sampling /
//!   per-shard exact enumeration);
//! * `assert_ms` — one `assert_candidate` (view maintenance + probability
//!   recompute) on a cloned network;
//! * `gains_ms` — one batch `information_gains` over every uncertain
//!   candidate (the Algorithm 1 selection step).
//!
//! Each point also records the differential evidence — the largest
//! absolute per-candidate probability delta and the entropy delta between
//! the representations — and whether both sharded fills were
//! bit-deterministic, so the emitted JSON certifies correctness alongside
//! the win.

use crate::{matched_network, MatcherKind};
use serde::Serialize;
use smn_core::feedback::Assertion;
use smn_core::{MatchingNetwork, ProbabilisticNetwork, SamplerConfig, ShardingConfig};
use smn_datasets::{FederationSpec, SharingModel, Vocabulary};
use smn_schema::CandidateId;
use std::time::Instant;

/// Federation sizes measured (number of fused sub-networks); 12 is the
/// `webform_federation` preset shape.
pub const GROUPS: [usize; 3] = [4, 12, 24];

/// Builds the standard sharding bench scenario — a federation of `groups`
/// webform clusters (3 schemas each), matched by the calibrated
/// perturbation matcher — returning the network *and* its verified
/// matching (the service benches track precision/recall against it).
pub fn federation_case(
    groups: usize,
    seed: u64,
) -> (MatchingNetwork, Vec<smn_schema::Correspondence>) {
    let fed = FederationSpec {
        name: format!("Fed{groups}"),
        vocabulary: Vocabulary::web_form(),
        groups,
        schemas_per_group: 3,
        attrs_min: 8,
        attrs_max: 14,
        sharing: SharingModel::RankBiased { alpha: 1.3 },
    }
    .generate(seed);
    matched_network(&fed.dataset, &fed.graph, MatcherKind::perturbation(seed))
}

/// [`federation_case`] without the ground truth.
pub fn federation_network(groups: usize, seed: u64) -> MatchingNetwork {
    federation_case(groups, seed).0
}

/// Sampler configuration of the sharding bench: the §VI-B shape scaled to
/// interactive sizes.
pub fn bench_sampler(seed: u64) -> SamplerConfig {
    SamplerConfig { n_samples: 400, walk_steps: 4, n_min: 150, seed, anneal: true, chains: 1 }
}

/// Sharded configuration used by the benches: defaults, sequential fill
/// kept off so fill-time wins reflect locality *and* parallelism the way
/// a session would see them.
pub fn bench_sharding() -> ShardingConfig {
    ShardingConfig::default()
}

/// One measured federation size.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingPoint {
    /// Fused sub-networks in the scenario.
    pub groups: usize,
    /// Resulting candidate-set size `|C|`.
    pub candidates: usize,
    /// Conflict components (= shard count of the sharded representation).
    pub components: usize,
    /// Candidates in the largest component.
    pub largest_component: usize,
    /// Whether the monolithic store concluded exhaustion (on the product
    /// instance space of a federation it generally cannot, which is why
    /// `max_probability_delta` is only meaningful when this is true).
    pub monolithic_exhausted: bool,
    /// Whether every shard ended exhausted (exact posteriors).
    pub sharded_exhausted: bool,
    /// Largest absolute per-candidate probability delta between the
    /// representations (expected ≈ 0 when both are exhausted).
    pub max_probability_delta: f64,
    /// Absolute entropy delta between the representations.
    pub entropy_delta: f64,
    /// Whether two independent sharded builds agreed bit-for-bit.
    pub deterministic: bool,
    /// Milliseconds to build the monolithic network (min over iters).
    pub monolithic_fill_ms: f64,
    /// Milliseconds to build the sharded network (min over iters).
    pub sharded_fill_ms: f64,
    /// Milliseconds per monolithic `assert_candidate` (min over iters).
    pub monolithic_assert_ms: f64,
    /// Milliseconds per sharded `assert_candidate` (min over iters).
    pub sharded_assert_ms: f64,
    /// Milliseconds per monolithic batch `information_gains` over the
    /// uncertain pool (min over iters).
    pub monolithic_gains_ms: f64,
    /// Milliseconds per sharded batch `information_gains` (min over
    /// iters).
    pub sharded_gains_ms: f64,
}

/// Two uncertain candidates sharing a shard — the warm-up-then-measure
/// pair of the owned-assert protocol: asserting the first unshares the
/// shard so timing the second measures the owned hot path, not the
/// copy-on-write. (On a monolithic network every candidate shares the
/// single shard, so any warm-up works.) Shared by this module's
/// `measure_point` and the `service` bench module.
pub fn owned_probe(pn: &ProbabilisticNetwork) -> (CandidateId, CandidateId) {
    let uncertain = pn.uncertain_candidates();
    uncertain
        .iter()
        .enumerate()
        .find_map(|(i, &a)| {
            uncertain[i + 1..].iter().find(|&&b| pn.shard_of(a) == pn.shard_of(b)).map(|&b| (a, b))
        })
        .expect("federation networks have a shard with two uncertain candidates")
}

fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one federation size; `iters` timing repetitions per quantity.
pub fn measure_point(groups: usize, iters: usize) -> ShardingPoint {
    let net = federation_network(groups, 7);
    let n = net.candidate_count();
    let sampler = bench_sampler(3);
    let sharding = bench_sharding();

    let mono = ProbabilisticNetwork::new(net.clone(), sampler);
    let sharded = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
    let again = ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding);
    let deterministic = sharded.probabilities() == again.probabilities();
    let components = sharded.shard_count();
    let largest_component = {
        let comps = smn_constraints::Components::of_index(net.index());
        comps.largest()
    };
    let max_probability_delta = mono
        .probabilities()
        .iter()
        .zip(sharded.probabilities())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let entropy_delta = (mono.entropy() - sharded.entropy()).abs();

    let monolithic_fill_ms =
        min_ms(iters, || drop(ProbabilisticNetwork::new(net.clone(), sampler)));
    let sharded_fill_ms =
        min_ms(iters, || drop(ProbabilisticNetwork::new_sharded(net.clone(), sampler, sharding)));

    // Since the copy-on-write refactor a clone *shares* its snapshots, so
    // the first assertion on it would pay the snapshot copy. This bench
    // tracks the owned hot path (comparable with the PR-2/PR-3 baselines
    // checked in as BENCH_sharding.json): a warm-up assertion in the
    // probe's shard unshares it before the timer starts. The copy-on-write
    // commit cost itself is measured separately in BENCH_service.json.
    let (warm, probe) = owned_probe(&sharded);
    let timed_assert = |pn: &ProbabilisticNetwork| {
        let mut best = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let mut fresh = pn.clone();
            fresh.assert_candidate(Assertion { candidate: warm, approved: false }).unwrap();
            let start = Instant::now();
            fresh.assert_candidate(Assertion { candidate: probe, approved: true }).unwrap();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let monolithic_assert_ms = timed_assert(&mono);
    let sharded_assert_ms = timed_assert(&sharded);

    let pool = mono.uncertain_candidates();
    let monolithic_gains_ms = min_ms(iters, || drop(mono.information_gains(&pool)));
    let sharded_pool = sharded.uncertain_candidates();
    let sharded_gains_ms = min_ms(iters, || drop(sharded.information_gains(&sharded_pool)));

    ShardingPoint {
        groups,
        candidates: n,
        components,
        largest_component,
        monolithic_exhausted: mono.is_exhausted(),
        sharded_exhausted: sharded.is_exhausted(),
        max_probability_delta,
        entropy_delta,
        deterministic,
        monolithic_fill_ms,
        sharded_fill_ms,
        monolithic_assert_ms,
        sharded_assert_ms,
        monolithic_gains_ms,
        sharded_gains_ms,
    }
}

/// Measures all [`GROUPS`].
pub fn measure(iters: usize) -> Vec<ShardingPoint> {
    GROUPS.iter().map(|&g| measure_point(g, iters)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_point_is_deterministic_and_multi_component() {
        let p = measure_point(GROUPS[0], 1);
        assert!(p.deterministic, "same seed must reproduce the sharded posteriors");
        assert!(p.components >= p.groups, "a federation shards into at least one piece per group");
        assert!(p.candidates > 0);
        assert!(p.monolithic_fill_ms > 0.0 && p.sharded_fill_ms > 0.0);
        assert!(p.monolithic_assert_ms > 0.0 && p.sharded_assert_ms > 0.0);
    }
}
