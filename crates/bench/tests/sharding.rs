//! The sharding differential suite — runs in the release-mode bench smoke
//! CI step (`cargo test --release -p smn-bench`).
//!
//! * differential: monolithic and sharded representations agree within
//!   1e-12 (probabilities, entropy, information gains) on a federation
//!   scenario small enough for the monolithic store to truly exhaust, and
//!   a fixed assertion sequence produces identical traces;
//! * exactness: the sharded posterior matches an independent per-component
//!   exact enumeration on the full-size federation, where the monolithic
//!   sampler cannot exhaust the product space at all;
//! * determinism smoke: two identically-seeded sharded runs emit
//!   byte-identical report JSON.

use smn_bench::sharding::{bench_sampler, federation_network};
use smn_bench::{matched_network, MatcherKind};
use smn_core::exact::enumerate_with_index;
use smn_core::feedback::Feedback;
use smn_core::selection::RandomSelection;
use smn_core::{
    reconcile, GroundTruthOracle, ProbabilisticNetwork, ReconciliationGoal, SamplerConfig,
    ShardingConfig,
};
use smn_datasets::{FederationSpec, SharingModel, Vocabulary};
use smn_schema::CandidateId;

/// A federation small enough that the monolithic sampler provably
/// enumerates all of Ω (so the 1e-12 differential is exact-vs-exact).
fn tiny_federation(seed: u64) -> (smn_core::MatchingNetwork, Vec<smn_schema::Correspondence>) {
    let fed = FederationSpec {
        name: "TinyFed".into(),
        vocabulary: Vocabulary::web_form(),
        groups: 3,
        schemas_per_group: 3,
        attrs_min: 4,
        attrs_max: 6,
        sharing: SharingModel::RankBiased { alpha: 1.2 },
    }
    .generate(seed);
    let (net, truth) = matched_network(&fed.dataset, &fed.graph, MatcherKind::perturbation(seed));
    (net, truth)
}

fn exhaustive_sampler(seed: u64) -> SamplerConfig {
    SamplerConfig { n_samples: 800, walk_steps: 4, n_min: 600, seed, anneal: true, chains: 1 }
}

#[test]
fn sharded_matches_monolithic_within_1e12_on_exhausted_federation() {
    let mut compared = 0;
    for seed in 0..6u64 {
        let (net, _) = tiny_federation(seed);
        let mono = ProbabilisticNetwork::new(net.clone(), exhaustive_sampler(seed));
        // only exhausted stores carry the exactness guarantee; the tiny
        // federation reaches it for most seeds
        if !mono.is_exhausted() {
            continue;
        }
        let total =
            enumerate_with_index(net.index(), &Feedback::new(net.candidate_count()), 1 << 22);
        if total.map(|i| i.len()) != Some(mono.samples().len()) {
            continue; // §III-B exhaustion heuristic fired early — not exact
        }
        let sharded = ProbabilisticNetwork::new_sharded(
            net,
            exhaustive_sampler(seed),
            ShardingConfig::default(),
        );
        assert!(sharded.is_exhausted());
        for (i, (&p, &q)) in mono.probabilities().iter().zip(sharded.probabilities()).enumerate() {
            assert!((p - q).abs() < 1e-12, "seed {seed} candidate {i}: {p} vs {q}");
        }
        assert!((mono.entropy() - sharded.entropy()).abs() < 1e-12);
        let pool = mono.uncertain_candidates();
        let (gm, gs) = (mono.information_gains(&pool), sharded.information_gains(&pool));
        for ((&c, &a), &b) in pool.iter().zip(&gm).zip(&gs) {
            assert!((a - b).abs() < 1e-12, "seed {seed} gain of {c}: {a} vs {b}");
        }
        compared += 1;
    }
    assert!(compared >= 2, "too few federations reached true exhaustion ({compared})");
}

#[test]
fn fixed_assertion_sequence_produces_identical_traces() {
    let mut compared = 0;
    for seed in 0..6u64 {
        let (net, truth) = tiny_federation(seed);
        let mono = ProbabilisticNetwork::new(net.clone(), exhaustive_sampler(seed));
        if !mono.is_exhausted() {
            continue;
        }
        let total =
            enumerate_with_index(net.index(), &Feedback::new(net.candidate_count()), 1 << 22);
        if total.map(|i| i.len()) != Some(mono.samples().len()) {
            continue;
        }
        let sharded = ProbabilisticNetwork::new_sharded(
            net,
            exhaustive_sampler(seed),
            ShardingConfig::default(),
        );
        let run = |mut pn: ProbabilisticNetwork| {
            let mut strat = RandomSelection::new(seed ^ 0xF00D);
            let mut oracle = GroundTruthOracle::new(truth.iter().copied());
            reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Budget(12))
        };
        assert_eq!(run(mono), run(sharded), "seed {seed}: traces diverged");
        compared += 1;
    }
    assert!(compared >= 2, "too few federations reached true exhaustion ({compared})");
}

#[test]
fn sharded_posterior_is_exact_where_the_monolithic_sampler_cannot_be() {
    // the full-size federation: the instance space is the product over
    // dozens of components, far beyond any n_min — the monolithic store
    // samples, the sharded one enumerates per component
    let net = federation_network(12, 7);
    let sharded =
        ProbabilisticNetwork::new_sharded(net.clone(), bench_sampler(3), ShardingConfig::default());
    assert!(sharded.shard_count() >= 12);
    // independent referee: per-component exact enumeration via the
    // conflict-index splitter, bypassing SampleStore entirely
    let comps = smn_constraints::Components::of_index(net.index());
    let subs = net.index().shard(&comps);
    let mut checked = 0usize;
    for (k, sub) in subs.iter().enumerate() {
        let Some(instances) =
            enumerate_with_index(sub, &Feedback::new(sub.candidate_count()), 4096)
        else {
            continue; // component too large for the referee — skip
        };
        assert!(!instances.is_empty(), "every component admits an instance");
        for (j, &global) in comps.members(k).iter().enumerate() {
            let lc = CandidateId::from_index(j);
            let exact =
                instances.iter().filter(|i| i.contains(lc)).count() as f64 / instances.len() as f64;
            let got = sharded.probability(global);
            assert!(
                (exact - got).abs() < 1e-12,
                "component {k}, candidate {global}: exact {exact} vs sharded {got}"
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "referee must cover a substantial candidate set ({checked})");
}

/// The deterministic portion of a sharded run, serialized for the
/// byte-identity smoke (timings deliberately excluded).
#[derive(serde::Serialize)]
struct DeterminismReport {
    candidates: usize,
    shards: usize,
    distinct_samples: usize,
    exhausted: bool,
    probabilities: Vec<f64>,
    entropy: f64,
    trace: Vec<ReportStep>,
}

#[derive(serde::Serialize)]
struct ReportStep {
    step: usize,
    candidate: u32,
    approved: bool,
    effort: f64,
    entropy: f64,
}

fn sharded_report(seed: u64) -> String {
    let (net, truth) = tiny_federation(seed);
    let mut pn =
        ProbabilisticNetwork::new_sharded(net, exhaustive_sampler(seed), ShardingConfig::default());
    let mut strat = RandomSelection::new(seed);
    let mut oracle = GroundTruthOracle::new(truth.iter().copied());
    let trace = reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Budget(10));
    let report = DeterminismReport {
        candidates: pn.network().candidate_count(),
        shards: pn.shard_count(),
        distinct_samples: pn.distinct_sample_count(),
        exhausted: pn.is_exhausted(),
        probabilities: pn.probabilities().to_vec(),
        entropy: pn.entropy(),
        trace: trace
            .iter()
            .map(|t| ReportStep {
                step: t.step,
                candidate: t.candidate.0,
                approved: t.approved,
                effort: t.effort,
                entropy: t.entropy,
            })
            .collect(),
    };
    serde_json::to_string_pretty(&report).expect("serializable report")
}

#[test]
fn determinism_smoke_two_seeded_runs_emit_byte_identical_json() {
    for seed in [3u64, 11] {
        let a = sharded_report(seed);
        let b = sharded_report(seed);
        assert_eq!(a.as_bytes(), b.as_bytes(), "seed {seed}: sharded report JSON diverged");
    }
    // and different seeds genuinely differ (the smoke is not vacuous)
    assert_ne!(sharded_report(3), sharded_report(11));
}
