//! Criterion wrappers for the Algorithm 1 hot paths: batch
//! `information_gains` and the per-assertion `assert_candidate`
//! (view maintenance + probability recomputation), at the three standard
//! bench sizes. The raw-timing snapshot lives in `bench_hotpaths` /
//! `BENCH_hotpaths.json`; this group gives the same paths a criterion
//! harness for quick relative comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::hotpaths::{bench_network, store_config, SIZES};
use smn_core::feedback::Assertion;
use smn_core::ProbabilisticNetwork;
use smn_schema::CandidateId;

fn prepared() -> Vec<ProbabilisticNetwork> {
    SIZES
        .iter()
        .map(|&(s, a)| ProbabilisticNetwork::new(bench_network(s, a, 7), store_config()))
        .collect()
}

fn bench_information_gains(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/information-gains");
    for pn in prepared() {
        let n = pn.network().candidate_count();
        let pool = pn.uncertain_candidates();
        group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
            b.iter(|| pn.information_gains(&pool));
        });
    }
    group.finish();
}

/// The vendored criterion stand-in has no `iter_batched`, so the measured
/// closure must include the `pn.clone()` setup. The companion
/// `clone-baseline` group times that clone alone — subtract it to get the
/// assertion path itself (the `bench_hotpaths` bin and
/// `BENCH_hotpaths.json` report the call with the clone excluded).
fn bench_assert_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpaths/assert-candidate (incl. clone)");
    for pn in prepared() {
        let n = pn.network().candidate_count();
        let probe = (0..n)
            .map(CandidateId::from_index)
            .find(|&cand| {
                let p = pn.probability(cand);
                p > 0.0 && p < 1.0
            })
            .expect("uncertain candidate");
        group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
            b.iter(|| {
                let mut fresh = pn.clone();
                fresh.assert_candidate(Assertion { candidate: probe, approved: true }).unwrap();
                fresh.entropy()
            });
        });
    }
    group.finish();
    let mut group = c.benchmark_group("hotpaths/clone-baseline");
    for pn in prepared() {
        let n = pn.network().candidate_count();
        group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
            b.iter(|| pn.clone().entropy());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_information_gains, bench_assert_candidate);
criterion_main!(benches);
