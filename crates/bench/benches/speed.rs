//! Criterion wrappers for the speed-ceiling paths: the sampling fill on
//! the largest standard size, the batched what-if evaluation against the
//! per-candidate loop, and a federation gain scan. The raw-timing snapshot
//! (with the PR-2 baseline ratios) lives in `exp_speed` /
//! `BENCH_speed.json`; this group gives the same setups a criterion
//! harness for quick relative comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::hotpaths::{bench_network, emission_config, SIZES};
use smn_bench::sharding::{bench_sampler, bench_sharding, federation_network};
use smn_bench::speed::{what_if_queries, FEDERATION_GROUPS};
use smn_core::feedback::Feedback;
use smn_core::sampling::SampleStore;
use smn_core::ProbabilisticNetwork;

fn bench_sampling_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("speed/sampling-fill");
    let (s, a) = SIZES[SIZES.len() - 1];
    let net = bench_network(s, a, 7);
    let empty = Feedback::new(net.candidate_count());
    let n = net.candidate_count();
    group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &net, |b, net| {
        b.iter(|| SampleStore::new(net, &empty, emission_config()));
    });
    group.finish();
}

fn bench_what_if(c: &mut Criterion) {
    let net = federation_network(FEDERATION_GROUPS[0], 7);
    let pn = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
    let queries = what_if_queries(&pn);
    let n = pn.network().candidate_count();

    let mut group = c.benchmark_group("speed/what-if-batched");
    group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
        b.iter(|| pn.what_if_batch(&queries));
    });
    group.finish();

    let mut group = c.benchmark_group("speed/what-if-per-candidate");
    group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
        b.iter(|| queries.iter().map(|&(q, a)| pn.what_if(q, a)).sum::<f64>());
    });
    group.finish();
}

fn bench_federation_gains(c: &mut Criterion) {
    let mut group = c.benchmark_group("speed/federation-gain-scan");
    let net = federation_network(FEDERATION_GROUPS[0], 7);
    let pn = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
    let pool = pn.uncertain_candidates();
    let n = pn.network().candidate_count();
    group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
        b.iter(|| pn.information_gains(&pool));
    });
    group.finish();
}

criterion_group!(benches, bench_sampling_fill, bench_what_if, bench_federation_gains);
criterion_main!(benches);
