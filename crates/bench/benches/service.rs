//! Criterion wrappers for the copy-on-write snapshot primitives and the
//! multi-worker service round: fork, exact what-if, first-commit-on-fork
//! and a full budgeted service run. The raw-timing snapshot lives in
//! `exp_service` / `BENCH_service.json`; this group gives the same paths
//! a criterion harness for quick relative comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::service::FORK_GROUPS;
use smn_bench::sharding::{bench_sampler, bench_sharding, federation_case, federation_network};
use smn_core::feedback::Assertion;
use smn_core::{ProbabilisticNetwork, ReconciliationGoal};
use smn_schema::CandidateId;
use smn_service::{Aggregation, ReconciliationService, ServiceConfig};

fn uncertain_probe(pn: &ProbabilisticNetwork) -> CandidateId {
    (0..pn.network().candidate_count())
        .map(CandidateId::from_index)
        .find(|&c| pn.probability(c) > 0.0 && pn.probability(c) < 1.0)
        .expect("federation networks have uncertain candidates")
}

fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/fork");
    for &groups in &FORK_GROUPS {
        let net = federation_network(groups, 7);
        let sharded =
            ProbabilisticNetwork::new_sharded(net.clone(), bench_sampler(3), bench_sharding());
        let mono = ProbabilisticNetwork::new(net, bench_sampler(3));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sharded/g{groups}")),
            &sharded,
            |b, pn| b.iter(|| pn.fork()),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("monolithic/g{groups}")),
            &mono,
            |b, pn| b.iter(|| pn.fork()),
        );
    }
    group.finish();
}

fn bench_what_if(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/what-if");
    for &groups in &FORK_GROUPS {
        let net = federation_network(groups, 7);
        let sharded = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
        let probe = uncertain_probe(&sharded);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sharded/g{groups}")),
            &(sharded, probe),
            |b, (pn, probe)| b.iter(|| pn.what_if(*probe, true)),
        );
    }
    group.finish();
}

fn bench_commit_on_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/first-commit-on-fork (incl. fork)");
    for &groups in &FORK_GROUPS {
        let net = federation_network(groups, 7);
        let sharded = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
        let probe = uncertain_probe(&sharded);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sharded/g{groups}")),
            &(sharded, probe),
            |b, (pn, probe)| {
                b.iter(|| {
                    let mut fresh = pn.fork();
                    fresh
                        .assert_candidate(Assertion { candidate: *probe, approved: true })
                        .unwrap();
                    fresh
                })
            },
        );
    }
    group.finish();
}

fn bench_service_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/budget-16-run");
    group.sample_size(10);
    let (net, truth) = federation_case(12, 7);
    for &workers in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut svc = ReconciliationService::new(
                        net.clone(),
                        truth.clone(),
                        vec![0.1; workers],
                        ServiceConfig {
                            sampler: bench_sampler(3),
                            sharding: bench_sharding(),
                            redundancy: 1,
                            aggregation: Aggregation::Majority,
                            threads: workers,
                            scheduler: smn_service::Scheduler::Pool,
                            seed: 17,
                            goal: ReconciliationGoal::Budget(16),
                        },
                    );
                    svc.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fork, bench_what_if, bench_commit_on_fork, bench_service_round);
criterion_main!(benches);
