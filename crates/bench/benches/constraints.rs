//! Criterion benches for the constraint engine: index construction,
//! violation counting, and the hot incremental primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smn_bench::{matched_network, MatcherKind};
use smn_constraints::{BitSet, ClosureChecker, ConflictIndex, ConstraintConfig};
use smn_core::MatchingNetwork;
use smn_schema::CandidateId;

fn bp_network() -> MatchingNetwork {
    let d = smn_datasets::bp(1);
    let g = d.complete_graph();
    matched_network(&d, &g, MatcherKind::Coma).0
}

fn bench_index_build(c: &mut Criterion) {
    let d = smn_datasets::bp(1);
    let g = d.complete_graph();
    let (net, _) = matched_network(&d, &g, MatcherKind::Coma);
    let mut group = c.benchmark_group("constraints/build");
    group.bench_function("bp-coma", |b| {
        b.iter(|| {
            ConflictIndex::build(
                net.catalog(),
                net.graph(),
                net.candidates(),
                ConstraintConfig::default(),
            )
            .potential_triple_count()
        });
    });
    group.finish();
}

fn bench_incremental_ops(c: &mut Criterion) {
    let net = bp_network();
    let n = net.candidate_count();
    let index = net.index();
    // a random consistent instance to probe against
    let mut rng = StdRng::seed_from_u64(5);
    let mut inst = BitSet::new(n);
    for i in 0..n {
        let cand = CandidateId::from_index(i);
        if rng.random_bool(0.6) && index.can_add(&inst, cand) {
            inst.insert(cand);
        }
    }
    let outside: Vec<CandidateId> =
        (0..n).map(CandidateId::from_index).filter(|&cand| !inst.contains(cand)).collect();
    let mut group = c.benchmark_group("constraints/incremental");
    group.bench_function("can_add-sweep", |b| {
        b.iter(|| outside.iter().filter(|&&cand| index.can_add(&inst, cand)).count());
    });
    group.bench_function("violations_in-full-set", |b| {
        let full = BitSet::full(n);
        b.iter(|| index.violations_in(&full).len());
    });
    group.bench_function("is_consistent", |b| {
        b.iter(|| index.is_consistent(&inst));
    });
    group.bench_function("is_maximal", |b| {
        let forbidden = BitSet::new(n);
        b.iter(|| index.is_maximal(&inst, &forbidden));
    });
    group.finish();
}

fn bench_closure_checker(c: &mut Criterion) {
    let net = bp_network();
    let checker = ClosureChecker::new(net.catalog(), net.candidates());
    let full = BitSet::full(net.candidate_count());
    let mut group = c.benchmark_group("constraints/closure");
    group.bench_function("full-set", |b| {
        b.iter(|| checker.is_consistent(&full));
    });
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_incremental_ops, bench_closure_checker);
criterion_main!(benches);
