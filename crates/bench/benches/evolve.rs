//! Criterion wrappers for online network evolution: one candidate arrival
//! integrated incrementally (`ProbabilisticNetwork::extend`, patching the
//! index and rebuilding only the merged shard) vs the full
//! index-build + sharded-fill a static pipeline would rerun. The
//! raw-timing snapshot over whole arrival/churn schedules lives in
//! `exp_evolve` / `BENCH_evolve.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::evolve::{bench_sampler, candidate_pool, evolving_scenario, GROUPS};
use smn_core::{MatchingNetwork, ProbabilisticNetwork, ShardingConfig};
use smn_schema::CandidateSet;

fn bench_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolve/one-arrival");
    for &groups in &GROUPS {
        let evo = evolving_scenario(groups, 7);
        let pool = candidate_pool(&evo, 7);
        let cat = &evo.federation.dataset.catalog;
        let graph = &evo.federation.graph;
        // the t0 network; the measured arrival is the first scheduled one
        let initial = evo.initial_count(pool.len());
        let mut cs = CandidateSet::new(cat);
        for &(corr, conf) in &pool[..initial] {
            cs.add(cat, Some(graph), corr.a(), corr.b(), conf).unwrap();
        }
        let net = MatchingNetwork::new(
            cat.clone(),
            graph.clone(),
            cs,
            smn_constraints::ConstraintConfig::default(),
        );
        let pn =
            ProbabilisticNetwork::new_sharded(net, bench_sampler(3), ShardingConfig::default());
        let (corr, conf) = pool[initial];
        // incremental: clone + extend (the clone is the same on both sides
        // of the comparison — the vendored criterion has no iter_batched)
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("incremental/g{groups}")),
            &pn,
            |b, pn| {
                b.iter(|| {
                    let mut fresh = pn.clone();
                    fresh.extend(corr.a(), corr.b(), conf).unwrap();
                    fresh
                })
            },
        );
        // rebuild: re-index + re-fill the whole network at the same state
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rebuild/g{groups}")),
            &pn,
            |b, pn| {
                b.iter(|| {
                    let mut cs = CandidateSet::new(cat);
                    for cand in pn.network().candidates().candidates() {
                        cs.add(cat, Some(graph), cand.corr.a(), cand.corr.b(), cand.confidence)
                            .unwrap();
                    }
                    cs.add(cat, Some(graph), corr.a(), corr.b(), conf).unwrap();
                    let net = MatchingNetwork::new(
                        cat.clone(),
                        graph.clone(),
                        cs,
                        smn_constraints::ConstraintConfig::default(),
                    );
                    ProbabilisticNetwork::new_sharded(
                        net,
                        bench_sampler(3),
                        ShardingConfig::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arrival);
criterion_main!(benches);
