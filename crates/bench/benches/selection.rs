//! Criterion benches for the selection strategies of §IV-D: the cost of
//! one select step, and the batch information-gain computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::{matched_network, standard_sampler, MatcherKind};
use smn_core::selection::{
    ConfidenceOrderSelection, InformationGainSelection, MaxEntropySelection, RandomSelection,
    SelectionStrategy,
};
use smn_core::ProbabilisticNetwork;

fn bp_network() -> ProbabilisticNetwork {
    let d = smn_datasets::bp(1);
    let g = d.complete_graph();
    let (net, _) = matched_network(&d, &g, MatcherKind::Coma);
    ProbabilisticNetwork::new(net, standard_sampler(1))
}

fn bench_select_step(c: &mut Criterion) {
    let pn = bp_network();
    let mut group = c.benchmark_group("selection/step");
    group.bench_function("random", |b| {
        let mut s = RandomSelection::new(1);
        b.iter(|| s.select(&pn));
    });
    group.bench_function("information-gain", |b| {
        let mut s = InformationGainSelection::new(1);
        b.iter(|| s.select(&pn));
    });
    group.bench_function("information-gain-limit32", |b| {
        let mut s = InformationGainSelection::new(1).with_limit(32);
        b.iter(|| s.select(&pn));
    });
    group.bench_function("max-entropy", |b| {
        let mut s = MaxEntropySelection;
        b.iter(|| s.select(&pn));
    });
    group.bench_function("confidence-order", |b| {
        let mut s = ConfidenceOrderSelection;
        b.iter(|| s.select(&pn));
    });
    group.finish();
}

fn bench_information_gains_batch(c: &mut Criterion) {
    let pn = bp_network();
    let pool = pn.uncertain_candidates();
    let mut group = c.benchmark_group("selection/information-gains");
    group.bench_with_input(BenchmarkId::from_parameter(pool.len()), &pool, |b, pool| {
        b.iter(|| pn.information_gains(pool));
    });
    // the per-candidate path the batch API replaces (first 16 candidates
    // only — it is quadratically slower)
    group.bench_function("single-candidate-x16", |b| {
        b.iter(|| pool.iter().take(16).map(|&c| pn.information_gain(c)).sum::<f64>());
    });
    group.finish();
}

criterion_group!(benches, bench_select_step, bench_information_gains_batch);
criterion_main!(benches);
