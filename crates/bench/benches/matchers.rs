//! Criterion benches for the string measures and matcher ensembles.

use criterion::{criterion_group, criterion_main, Criterion};
use smn_matchers::matcher::{match_network, PairMatcher};
use smn_matchers::{ensemble, text};
use smn_schema::SchemaId;

const PAIRS: [(&str, &str); 5] = [
    ("releaseDate", "screenDate"),
    ("supplier_address_line_1", "SupplierAddr1"),
    ("productionDate", "date"),
    ("purchaseOrderNumber", "po_num"),
    ("applicantFirstName", "first_name"),
];

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("text");
    group.bench_function("levenshtein", |b| {
        b.iter(|| PAIRS.iter().map(|(x, y)| text::levenshtein_similarity(x, y)).sum::<f64>());
    });
    group.bench_function("jaro-winkler", |b| {
        b.iter(|| PAIRS.iter().map(|(x, y)| text::jaro_winkler(x, y)).sum::<f64>());
    });
    group.bench_function("qgram-jaccard", |b| {
        b.iter(|| PAIRS.iter().map(|(x, y)| text::qgram_jaccard(x, y, 3)).sum::<f64>());
    });
    group.bench_function("monge-elkan", |b| {
        b.iter(|| PAIRS.iter().map(|(x, y)| text::monge_elkan(x, y)).sum::<f64>());
    });
    group.bench_function("tokenize", |b| {
        b.iter(|| PAIRS.iter().map(|(x, _)| text::tokenize(x).len()).sum::<usize>());
    });
    group.finish();
}

fn bench_ensembles(c: &mut Criterion) {
    let d = smn_datasets::bp(1);
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(20);
    group.bench_function("coma-like/pair", |b| {
        let m = ensemble::coma_like();
        b.iter(|| m.match_pair(&d.catalog, SchemaId(0), SchemaId(1)).len());
    });
    group.bench_function("amc-like/pair", |b| {
        let m = ensemble::amc_like(&d.catalog);
        b.iter(|| m.match_pair(&d.catalog, SchemaId(0), SchemaId(1)).len());
    });
    group.bench_function("coma-like/network", |b| {
        let m = ensemble::coma_like();
        let g = d.complete_graph();
        b.iter(|| match_network(&m, &d.catalog, &g).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_measures, bench_ensembles);
criterion_main!(benches);
