//! Criterion wrappers for the request-driven serving core: ingress
//! submit+pump of a question/answer exchange, a full open-loop serving
//! run, and the session-fork selection path. The raw-timing snapshot
//! lives in `exp_serve` / `BENCH_serve.json`; this group gives the same
//! paths a criterion harness for quick relative comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::serve::{serve_config, serve_events, serve_scenario};
use smn_service::ServingCore;

fn bench_serve_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/open-loop-run");
    group.sample_size(10);
    let (net, truth, uncertain) = serve_scenario(8);
    for &workers in &[1usize, 4] {
        let events = serve_events(256, uncertain, workers, 13);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{workers}")),
            &(workers, events),
            |b, (workers, events)| {
                b.iter(|| {
                    let mut core = ServingCore::new(
                        net.clone(),
                        truth.clone(),
                        vec![0.1; *workers],
                        serve_config(*workers),
                    )
                    .expect("bench serving config");
                    core.run_events(events.iter().copied());
                    core.finish()
                })
            },
        );
    }
    group.finish();
}

fn bench_question_answer_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/question-answer-exchange");
    group.sample_size(10);
    let (net, truth, uncertain) = serve_scenario(8);
    // a warm core mid-run: half the workload applied, forks live
    let half = serve_events(256, uncertain, 2, 13);
    let half = &half[..half.len() / 2];
    group.bench_with_input(BenchmarkId::from_parameter("w2"), &(), |b, ()| {
        b.iter(|| {
            let mut core =
                ServingCore::new(net.clone(), truth.clone(), vec![0.1; 2], serve_config(2))
                    .expect("bench serving config");
            core.run_events(half.iter().copied());
            core.finish()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve_run, bench_question_answer_exchange);
criterion_main!(benches);
