//! Criterion wrappers for the component-sharded representation on the
//! multi-component federation scenario: network fill, per-assertion
//! maintenance and batch information gain, monolithic vs sharded. The
//! raw-timing snapshot lives in `exp_sharding` / `BENCH_sharding.json`;
//! this group gives the same paths a criterion harness for quick relative
//! comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::sharding::{bench_sampler, bench_sharding, federation_network, GROUPS};
use smn_core::feedback::Assertion;
use smn_core::ProbabilisticNetwork;
use smn_schema::CandidateId;

fn bench_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding/fill");
    for &groups in &GROUPS {
        let net = federation_network(groups, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("monolithic/g{groups}")),
            &net,
            |b, net| b.iter(|| ProbabilisticNetwork::new(net.clone(), bench_sampler(3))),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sharded/g{groups}")),
            &net,
            |b, net| {
                b.iter(|| {
                    ProbabilisticNetwork::new_sharded(
                        net.clone(),
                        bench_sampler(3),
                        bench_sharding(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// The vendored criterion stand-in has no `iter_batched`, so the measured
/// closure must include the `pn.clone()` setup — identical on both sides,
/// so the relative comparison stands.
fn bench_assert(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding/assert-candidate (incl. clone)");
    for &groups in &GROUPS {
        let net = federation_network(groups, 7);
        let probe = |pn: &ProbabilisticNetwork| {
            (0..pn.network().candidate_count())
                .map(CandidateId::from_index)
                .find(|&c| pn.probability(c) > 0.0 && pn.probability(c) < 1.0)
                .expect("uncertain candidate exists")
        };
        let mono = ProbabilisticNetwork::new(net.clone(), bench_sampler(3));
        let c_mono = probe(&mono);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("monolithic/g{groups}")),
            &mono,
            |b, pn| {
                b.iter(|| {
                    let mut fresh = pn.clone();
                    fresh
                        .assert_candidate(Assertion { candidate: c_mono, approved: true })
                        .unwrap();
                    fresh
                })
            },
        );
        let sharded = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
        let c_sharded = probe(&sharded);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sharded/g{groups}")),
            &sharded,
            |b, pn| {
                b.iter(|| {
                    let mut fresh = pn.clone();
                    fresh
                        .assert_candidate(Assertion { candidate: c_sharded, approved: true })
                        .unwrap();
                    fresh
                })
            },
        );
    }
    group.finish();
}

fn bench_gains(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding/information-gains");
    for &groups in &GROUPS {
        let net = federation_network(groups, 7);
        let mono = ProbabilisticNetwork::new(net.clone(), bench_sampler(3));
        let pool = mono.uncertain_candidates();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("monolithic/g{groups}")),
            &mono,
            |b, pn| b.iter(|| pn.information_gains(&pool)),
        );
        let sharded = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
        let pool = sharded.uncertain_candidates();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sharded/g{groups}")),
            &sharded,
            |b, pn| b.iter(|| pn.information_gains(&pool)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fill, bench_assert, bench_gains);
criterion_main!(benches);
