//! Criterion benches for Algorithm 2, including the tabu-list and
//! proposal-rule ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use smn_bench::{matched_network, standard_sampler, MatcherKind};
use smn_core::instantiate::{instantiate, InstantiationConfig, Proposal};
use smn_core::ProbabilisticNetwork;

fn bp_network() -> ProbabilisticNetwork {
    let d = smn_datasets::bp(1);
    let g = d.complete_graph();
    let (net, _) = matched_network(&d, &g, MatcherKind::Coma);
    ProbabilisticNetwork::new(net, standard_sampler(1))
}

fn bench_instantiate(c: &mut Criterion) {
    let pn = bp_network();
    let mut group = c.benchmark_group("instantiation");
    group.bench_function("greedy-pick-only", |b| {
        b.iter(|| {
            instantiate(&pn, InstantiationConfig { iterations: 0, ..Default::default() })
                .repair_distance
        });
    });
    group.bench_function("local-search-200", |b| {
        b.iter(|| instantiate(&pn, InstantiationConfig::default()).repair_distance);
    });
    group.finish();
}

/// Ablations: tabu on/off, roulette vs uniform proposals, likelihood
/// on/off. Criterion reports the time; the quality impact is reported by
/// the figure experiments and `EXPERIMENTS.md §Ablations`.
fn bench_ablations(c: &mut Criterion) {
    let pn = bp_network();
    let mut group = c.benchmark_group("instantiation/ablations");
    let configs = [
        ("baseline", InstantiationConfig::default()),
        ("no-tabu", InstantiationConfig { tabu_size: 0, ..Default::default() }),
        (
            "uniform-proposal",
            InstantiationConfig { proposal: Proposal::Uniform, ..Default::default() },
        ),
        ("no-likelihood", InstantiationConfig { use_likelihood: false, ..Default::default() }),
    ];
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            b.iter(|| instantiate(&pn, cfg).repair_distance);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instantiate, bench_ablations);
criterion_main!(benches);
