//! Criterion wrappers for cached vs fresh-scan selection: one warm
//! cached pick after an assertion (the steady-state per-question cost)
//! against one full-pool fresh scan, on the small federation. The raw
//! whole-loop numbers (with the trace-identity certificate) live in
//! `exp_select` / `BENCH_select.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::sharding::{bench_sampler, bench_sharding, federation_network};
use smn_bench::speed::FEDERATION_GROUPS;
use smn_core::feedback::Assertion;
use smn_core::selection::SelectionStrategy;
use smn_core::{GainSource, InformationGainSelection, ProbabilisticNetwork};

fn steady_state_network() -> ProbabilisticNetwork {
    let net = federation_network(FEDERATION_GROUPS[0], 7);
    let mut pn = ProbabilisticNetwork::new_sharded(net, bench_sampler(3), bench_sharding());
    // one integrated answer: the steady state a reconciliation loop
    // selects from (exactly one component dirty)
    let c = pn.uncertain_candidates()[0];
    pn.assert_candidate(Assertion { candidate: c, approved: false }).unwrap();
    pn
}

fn bench_select(c: &mut Criterion) {
    let pn = steady_state_network();
    let n = pn.network().candidate_count();

    let mut group = c.benchmark_group("select/fresh-scan");
    group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
        let mut strategy = InformationGainSelection::new(11).without_cache();
        b.iter(|| strategy.select_with_score(pn));
    });
    group.finish();

    let mut group = c.benchmark_group("select/cached");
    group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &pn, |b, pn| {
        let mut strategy = InformationGainSelection::new(11);
        pn.refresh_gain_cache(); // pay the cold scan outside the timer
        b.iter(|| strategy.select_with_score(pn));
    });
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
