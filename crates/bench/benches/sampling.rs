//! Criterion benches for Algorithm 3 sampling, including the
//! simulated-annealing ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smn_bench::{matched_network, MatcherKind};
use smn_core::feedback::Feedback;
use smn_core::sampling::{SampleStore, SamplerConfig};
use smn_core::MatchingNetwork;
use smn_datasets::{DatasetSpec, SharingModel, Vocabulary};

fn network(schemas: usize, attrs: usize, seed: u64) -> MatchingNetwork {
    let d = DatasetSpec {
        name: "bench".into(),
        vocabulary: Vocabulary::business_partner(),
        schema_count: schemas,
        attrs_min: attrs,
        attrs_max: attrs,
        sharing: SharingModel::RankBiased { alpha: 0.6 },
    }
    .generate(seed);
    let g = d.complete_graph();
    matched_network(&d, &g, MatcherKind::perturbation(seed)).0
}

fn bench_sample_emission(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/emission");
    for (schemas, attrs) in [(3usize, 20usize), (4, 40), (6, 60)] {
        let net = network(schemas, attrs, 7);
        let n = net.candidate_count();
        group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &net, |b, net| {
            let feedback = Feedback::new(net.candidate_count());
            b.iter(|| {
                let cfg = SamplerConfig {
                    n_samples: 50,
                    walk_steps: 4,
                    n_min: 1,
                    seed: 3,
                    anneal: true,
                    chains: 1,
                };
                SampleStore::new(net, &feedback, cfg).len()
            });
        });
    }
    group.finish();
}

/// Ablation: annealing acceptance vs always-accept random walk — measures
/// both the wall time and (via the returned distinct count) the coverage
/// value of the acceptance rule.
fn bench_annealing_ablation(c: &mut Criterion) {
    let net = network(4, 40, 7);
    let feedback = Feedback::new(net.candidate_count());
    let mut group = c.benchmark_group("sampling/annealing");
    for anneal in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if anneal { "anneal" } else { "always-accept" }),
            &anneal,
            |b, &anneal| {
                b.iter(|| {
                    let cfg = SamplerConfig {
                        n_samples: 50,
                        walk_steps: 4,
                        n_min: 1,
                        seed: 3,
                        anneal,
                        chains: 1,
                    };
                    SampleStore::new(&net, &feedback, cfg).len()
                });
            },
        );
    }
    group.finish();
}

/// View maintenance (one assertion) vs resampling from scratch.
fn bench_view_maintenance(c: &mut Criterion) {
    use smn_schema::CandidateId;
    let net = network(4, 40, 7);
    let cfg = SamplerConfig {
        n_samples: 400,
        walk_steps: 4,
        n_min: 150,
        seed: 3,
        anneal: true,
        chains: 1,
    };
    let feedback = Feedback::new(net.candidate_count());
    let store = SampleStore::new(&net, &feedback, cfg);
    // pick a candidate contained in some but not all samples
    let probe = (0..net.candidate_count())
        .map(CandidateId::from_index)
        .find(|&cand| {
            let k = store.samples().iter().filter(|s| s.contains(cand)).count();
            k > 0 && k < store.len()
        })
        .expect("some uncertain candidate");
    let mut group = c.benchmark_group("sampling/assertion");
    group.bench_function("view-maintenance", |b| {
        b.iter(|| {
            let mut st = store.clone();
            let mut fb = Feedback::new(net.candidate_count());
            fb.approve(probe);
            st.maintain(&net, &fb, probe, true);
            st.len()
        });
    });
    group.bench_function("resample-from-scratch", |b| {
        b.iter(|| {
            let mut fb = Feedback::new(net.candidate_count());
            fb.approve(probe);
            SampleStore::new(&net, &fb, cfg).len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sample_emission, bench_annealing_ablation, bench_view_maintenance);
criterion_main!(benches);
