//! Quickstart: the full pay-as-you-go pipeline in ~60 lines.
//!
//! Generates the BP dataset, matches it with the COMA-like ensemble,
//! builds the probabilistic matching network, spends a small reconciliation
//! budget with information-gain ordering, and instantiates a trusted
//! matching — printing quality before and after.
//!
//! Run with: `cargo run --release --example quickstart`

use smn::core::{
    GroundTruthOracle, MatchingNetwork, PrecisionRecall, ReconciliationGoal, Session, SessionConfig,
};
use smn::matchers::{ensemble, matcher::match_network};
use smn_constraints::ConstraintConfig;

fn main() {
    // 1. a network of schemas (synthetic BP: 3 schemas, 80–106 attributes)
    let dataset = smn::datasets::bp(42);
    let graph = dataset.complete_graph();
    let truth = dataset.selective_matching(&graph);
    println!(
        "dataset {}: {} schemas, ground truth |M| = {}",
        dataset.name,
        dataset.catalog.schema_count(),
        truth.len()
    );

    // 2. candidate correspondences from an automatic matcher
    let candidates = match_network(&ensemble::coma_like(), &dataset.catalog, &graph)
        .expect("matcher produces valid candidates");
    println!("matcher proposed |C| = {} candidates", candidates.len());

    // 3. the probabilistic matching network
    let network = MatchingNetwork::new(
        dataset.catalog.clone(),
        graph,
        candidates,
        ConstraintConfig::default(),
    );
    println!("initial violations: {}", network.initial_violations());
    let mut session = Session::new(network, SessionConfig::default());
    println!("initial uncertainty: {:.1} bits", session.entropy());

    // 4. instantiate BEFORE any feedback — pay-as-you-go means a usable
    //    matching exists at any time
    let before = session.instantiate_default();
    let q0 = PrecisionRecall::of_instance(
        session.network().network(),
        &before.instance,
        truth.iter().copied(),
    );
    println!(
        "no feedback:   precision {:.3}  recall {:.3}  (repair distance {})",
        q0.precision, q0.recall, before.repair_distance
    );

    // 5. spend a 10% effort budget, guided by information gain
    let budget = session.network().network().candidate_count() / 10;
    let mut oracle = GroundTruthOracle::new(truth.iter().copied());
    session.run(&mut oracle, ReconciliationGoal::Budget(budget));
    println!(
        "after {} assertions ({:.0}% effort): uncertainty {:.1} bits",
        budget,
        session.effort() * 100.0,
        session.entropy()
    );

    // 6. instantiate again
    let after = session.instantiate_default();
    let q1 = PrecisionRecall::of_instance(
        session.network().network(),
        &after.instance,
        truth.iter().copied(),
    );
    println!(
        "with feedback: precision {:.3}  recall {:.3}  (repair distance {})",
        q1.precision, q1.recall, after.repair_distance
    );
}
