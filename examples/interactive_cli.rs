//! An interactive reconciliation session on the terminal — the expert is
//! *you*.
//!
//! The tool builds a small purchase-order network, matches it, and then
//! asks you to approve (`y`) or reject (`n`) correspondences in
//! information-gain order. After every answer it reports the remaining
//! uncertainty and the current trusted matching size; `q` quits and prints
//! the final matching with its quality against the hidden ground truth —
//! so you can see how well you did.
//!
//! Run with: `cargo run --release --example interactive_cli`

use smn::core::{InstantiationConfig, MatchingNetwork, PrecisionRecall, Session, SessionConfig};
use smn::datasets::{DatasetSpec, SharingModel, Vocabulary};
use smn::matchers::{ensemble, matcher::match_network, Selection};
use smn_constraints::ConstraintConfig;
use std::io::{BufRead, Write};

fn main() {
    let dataset = DatasetSpec {
        name: "PO-interactive".into(),
        vocabulary: Vocabulary::purchase_order(),
        schema_count: 3,
        attrs_min: 12,
        attrs_max: 18,
        sharing: SharingModel::RankBiased { alpha: 0.8 },
    }
    .generate(7);
    let graph = dataset.complete_graph();
    let truth = dataset.selective_matching(&graph);
    // a permissive selection so the session has real confusions to resolve
    // (the preset threshold is calibrated for the much larger BP schemas)
    let matcher = ensemble::coma_like().with_selection(Selection {
        threshold: 0.33,
        top_k: 3,
        max_delta: Some(0.25),
    });
    let candidates =
        match_network(&matcher, &dataset.catalog, &graph).expect("matcher output is valid");
    let network = MatchingNetwork::new(
        dataset.catalog.clone(),
        graph,
        candidates,
        ConstraintConfig::default(),
    );
    println!(
        "Network: {} schemas, {} candidates, {} violations. Answer y/n (q to quit).\n",
        dataset.catalog.schema_count(),
        network.candidate_count(),
        network.initial_violations()
    );

    let mut session = Session::new(network, SessionConfig::default());
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    while let Some(q) = session.next_question() {
        if session.entropy() == 0.0 {
            break; // everything is certain — stop bothering the expert
        }
        let name = |a| session.network().network().catalog().attribute(a).name.clone();
        let schema = |a| {
            let s = session.network().network().catalog().schema_of(a);
            session.network().network().catalog().schema(s).name.clone()
        };
        print!(
            "[H = {:5.1} bits] {}.{} ≟ {}.{} (p = {:.2})  [y/n/q] ",
            session.entropy(),
            schema(q.correspondence.a()),
            name(q.correspondence.a()),
            schema(q.correspondence.b()),
            name(q.correspondence.b()),
            q.probability,
        );
        std::io::stdout().flush().expect("stdout");
        let answer = match lines.next() {
            Some(Ok(line)) => line.trim().to_lowercase(),
            _ => break,
        };
        match answer.as_str() {
            "y" | "yes" => {
                if session.answer(q.candidate, true).is_err() {
                    println!("  ↯ that approval contradicts earlier ones — recorded as reject");
                    session.answer(q.candidate, false).expect("reject always valid");
                }
            }
            "n" | "no" => session.answer(q.candidate, false).expect("reject always valid"),
            "q" | "quit" => break,
            _ => {
                println!("  (skipped — answer y, n or q)");
                continue;
            }
        }
    }

    let matching = session.instantiate(InstantiationConfig::default());
    let quality = PrecisionRecall::of_instance(
        session.network().network(),
        &matching.instance,
        truth.iter().copied(),
    );
    println!(
        "\nAfter {:.0}% effort: trusted matching with {} correspondences",
        session.effort() * 100.0,
        matching.instance.count(),
    );
    println!(
        "against the hidden ground truth: precision {:.3}, recall {:.3}, F1 {:.3}",
        quality.precision,
        quality.recall,
        quality.f1()
    );
    for c in matching.instance.iter() {
        let corr = session.network().network().corr(c);
        let cat = session.network().network().catalog();
        println!("  {} — {}", cat.attribute(corr.a()).name, cat.attribute(corr.b()).name);
    }
}
