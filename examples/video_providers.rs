//! The paper's motivating example (§II-A, Fig. 1 and Example 1): three
//! video content providers — EoverI, BBC, DVDizzy — whose date attributes
//! confuse automatic matchers.
//!
//! The example reproduces the ordering effect of Example 1: asserting the
//! correspondence every instance agrees on (`productionDate–date`) teaches
//! the network little, while asserting a discriminating correspondence
//! collapses the uncertainty.
//!
//! Run with: `cargo run --example video_providers`

use smn::core::{MatchingNetwork, ProbabilisticNetwork, SamplerConfig};
use smn::prelude::*;
use smn_constraints::ConstraintConfig;
use smn_core::Assertion;

fn build_network() -> MatchingNetwork {
    let mut b = CatalogBuilder::new();
    let sa = b.add_schema("EoverI").unwrap();
    let pd = b.add_attribute(sa, "productionDate").unwrap();
    let sb = b.add_schema("BBC").unwrap();
    let date = b.add_attribute(sb, "date").unwrap();
    let sc = b.add_schema("DVDizzy").unwrap();
    let rd = b.add_attribute(sc, "releaseDate").unwrap();
    let sd = b.add_attribute(sc, "screenDate").unwrap();
    let catalog = b.build();
    let graph = InteractionGraph::complete(3);
    let mut c = CandidateSet::new(&catalog);
    // the five correspondences the matcher of Fig. 1 produced
    c.add(&catalog, Some(&graph), pd, date, 0.9).unwrap(); // c0
    c.add(&catalog, Some(&graph), date, rd, 0.8).unwrap(); // c1
    c.add(&catalog, Some(&graph), pd, rd, 0.8).unwrap(); // c2
    c.add(&catalog, Some(&graph), date, sd, 0.7).unwrap(); // c3
    c.add(&catalog, Some(&graph), pd, sd, 0.7).unwrap(); // c4
    MatchingNetwork::new(catalog, graph, c, ConstraintConfig::default())
}

fn describe(pn: &ProbabilisticNetwork) {
    for (i, &p) in pn.probabilities().iter().enumerate() {
        let c = CandidateId::from_index(i);
        let corr = pn.network().corr(c);
        let name = |a: AttributeId| pn.network().catalog().attribute(a).name.clone();
        println!(
            "  {c}: {:<16} – {:<12} p = {:.2}   IG = {:.2}",
            name(corr.a()),
            name(corr.b()),
            p,
            pn.information_gain(c)
        );
    }
    println!("  network uncertainty H = {:.2} bits", pn.entropy());
}

fn main() {
    let sampler = SamplerConfig {
        anneal: true,
        n_samples: 500,
        walk_steps: 4,
        n_min: 100,
        seed: 7,
        chains: 1,
    };

    println!("The Fig. 1 matching network (5 candidates, 3 schemas):");
    let pn = ProbabilisticNetwork::new(build_network(), sampler);
    println!("violations among candidates: {}", pn.network().initial_violations());
    println!(
        "matching instances found: {} (exhaustive: {})",
        pn.samples().len(),
        pn.is_exhausted()
    );
    describe(&pn);
    println!();
    println!("Note: besides the paper's I1 = {{c0,c1,c2}} and I2 = {{c0,c3,c4}},");
    println!("two mixed maximal instances {{c1,c4}} and {{c2,c3}} exist under");
    println!("Definition 1 — Example 1 simplifies them away (see DESIGN.md).");
    println!();

    // --- the ordering effect of Example 1 ---
    println!("Asserting c0 (productionDate–date) first — the agreed-on pair:");
    let mut pn_bad = ProbabilisticNetwork::new(build_network(), sampler);
    let h_before = pn_bad.entropy();
    pn_bad.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }).unwrap();
    println!(
        "  H: {:.2} → {:.2} bits (gain {:.2})",
        h_before,
        pn_bad.entropy(),
        h_before - pn_bad.entropy()
    );
    println!();

    println!("Asserting c2 (productionDate–releaseDate) first — a discriminator:");
    let mut pn_good = ProbabilisticNetwork::new(build_network(), sampler);
    pn_good.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
    println!(
        "  H: {:.2} → {:.2} bits (gain {:.2})",
        h_before,
        pn_good.entropy(),
        h_before - pn_good.entropy()
    );
    describe(&pn_good);
    println!();
    println!("The information-gain heuristic therefore never asks about c0 first.");
}
