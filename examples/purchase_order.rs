//! Purchase-order scenario: budgeted reconciliation with a quality
//! trajectory.
//!
//! Uses the dataset *generator* directly to build a purchase-order network
//! of moderate size (the full PO preset has 10 schemas up to 408 attributes
//! — realistic but slow for a demo), matches it with both ensembles,
//! reconciles under increasing budgets, and prints the
//! precision/recall/uncertainty trajectory for each — the pay-as-you-go
//! story of the paper in table form.
//!
//! Run with: `cargo run --release --example purchase_order`

use smn::core::{
    GroundTruthOracle, InstantiationConfig, MatchingNetwork, PrecisionRecall, ReconciliationGoal,
    Session, SessionConfig,
};
use smn::datasets::{DatasetSpec, SharingModel, Vocabulary};
use smn::matchers::{ensemble, matcher::match_network};
use smn_constraints::ConstraintConfig;
use smn_core::engine::Strategy;

fn main() {
    let spec = DatasetSpec {
        name: "PO-demo".into(),
        vocabulary: Vocabulary::purchase_order(),
        schema_count: 6,
        attrs_min: 30,
        attrs_max: 80,
        sharing: SharingModel::RankBiased { alpha: 0.55 },
    };
    let dataset = spec.generate(2024);
    let graph = dataset.complete_graph();
    let truth = dataset.selective_matching(&graph);

    for (label, candidates) in [
        ("coma-like", match_network(&ensemble::coma_like(), &dataset.catalog, &graph).unwrap()),
        (
            "amc-like",
            match_network(&ensemble::amc_like(&dataset.catalog), &dataset.catalog, &graph).unwrap(),
        ),
    ] {
        let network = MatchingNetwork::new(
            dataset.catalog.clone(),
            graph.clone(),
            candidates,
            ConstraintConfig::default(),
        );
        let n = network.candidate_count();
        println!(
            "\n=== {label}: |C| = {n}, |M| = {}, violations = {} ===",
            truth.len(),
            network.initial_violations()
        );
        println!(
            "{:>8} {:>10} {:>10} {:>8} {:>12}",
            "effort", "precision", "recall", "F1", "H (bits)"
        );

        let mut session = Session::new(
            network,
            SessionConfig { strategy: Strategy::InformationGain, ..Default::default() },
        );
        let mut oracle = GroundTruthOracle::new(truth.iter().copied());
        let mut spent = 0usize;
        for pct in [0usize, 5, 10, 15, 20, 30] {
            let target = n * pct / 100;
            if target > spent {
                session.run(&mut oracle, ReconciliationGoal::Budget(target - spent));
                spent = target;
            }
            let inst = session.instantiate(InstantiationConfig::default());
            let q = PrecisionRecall::of_instance(
                session.network().network(),
                &inst.instance,
                truth.iter().copied(),
            );
            println!(
                "{:>7}% {:>10.3} {:>10.3} {:>8.3} {:>12.1}",
                pct,
                q.precision,
                q.recall,
                q.f1(),
                session.entropy()
            );
        }
    }
    println!("\nThe instantiated matching is usable at every row — that is the");
    println!("pay-as-you-go property; quality climbs with expert effort.");
}
