//! # smn — pay-as-you-go reconciliation in schema matching networks
//!
//! Facade crate re-exporting the whole stack. See the individual crates for
//! details:
//!
//! * [`schema`] — schemas, attributes, interaction graphs, candidate sets,
//! * [`constraints`] — network-level integrity constraints and violations,
//! * [`matchers`] — first-party schema matchers and ensembles,
//! * [`datasets`] — synthetic reproductions of the paper's four datasets,
//! * [`core`] — probabilistic matching networks, uncertainty reduction and
//!   instantiation (the paper's contribution),
//! * [`service`] — the concurrent multi-worker reconciliation service over
//!   copy-on-write network snapshots (fork/commit, redundancy-k crowds).
//!
//! The end-to-end flow — generate a dataset, match it, build the
//! probabilistic network, reconcile with an oracle, instantiate:
//!
//! ```
//! use smn::core::{GroundTruthOracle, MatchingNetwork, ReconciliationGoal, Session, SessionConfig};
//! use smn::datasets::{DatasetSpec, SharingModel, Vocabulary};
//! use smn::matchers::{ensemble, matcher::match_network};
//! use smn::prelude::*;
//! use smn_constraints::ConstraintConfig;
//!
//! // A small synthetic dataset in the shape of the paper's BP workload.
//! let dataset = DatasetSpec {
//!     name: "mini-bp".into(),
//!     vocabulary: Vocabulary::business_partner(),
//!     schema_count: 3,
//!     attrs_min: 8,
//!     attrs_max: 10,
//!     sharing: SharingModel::RankBiased { alpha: 0.6 },
//! }
//! .generate(42);
//! let graph = dataset.complete_graph();
//! let truth = dataset.selective_matching(&graph);
//!
//! // Candidate correspondences from an automatic matcher ensemble.
//! let candidates: CandidateSet =
//!     match_network(&ensemble::coma_like(), &dataset.catalog, &graph).expect("valid candidates");
//!
//! // Probability computation (§III) happens inside the session…
//! let network =
//!     MatchingNetwork::new(dataset.catalog.clone(), graph, candidates, ConstraintConfig::default());
//! let mut session = Session::new(network, SessionConfig::default());
//! assert!(session.entropy() >= 0.0);
//!
//! // …uncertainty reduction (§IV) spends a small assertion budget…
//! let mut oracle = GroundTruthOracle::new(truth.iter().copied());
//! session.run(&mut oracle, ReconciliationGoal::Budget(5));
//!
//! // …and instantiation (§V) returns a consistent matching at any time.
//! let result = session.instantiate_default();
//! assert!(session.network().network().index().is_consistent(&result.instance));
//! ```

pub use smn_constraints as constraints;
pub use smn_core as core;
pub use smn_datasets as datasets;
pub use smn_matchers as matchers;
pub use smn_schema as schema;
pub use smn_service as service;

/// Commonly used items, for `use smn::prelude::*`.
pub mod prelude {
    pub use smn_schema::{
        Attribute, AttributeId, Candidate, CandidateId, CandidateSet, Catalog, CatalogBuilder,
        Correspondence, InteractionGraph, Schema, SchemaId,
    };
}
