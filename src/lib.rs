//! # smn — pay-as-you-go reconciliation in schema matching networks
//!
//! Facade crate re-exporting the whole stack. See the individual crates for
//! details:
//!
//! * [`schema`] — schemas, attributes, interaction graphs, candidate sets,
//! * [`constraints`] — network-level integrity constraints and violations,
//! * [`matchers`] — first-party schema matchers and ensembles,
//! * [`datasets`] — synthetic reproductions of the paper's four datasets,
//! * [`core`] — probabilistic matching networks, uncertainty reduction and
//!   instantiation (the paper's contribution).
//!
//! ```no_run
//! use smn::prelude::*;
//! # fn main() {}
//! ```

pub use smn_constraints as constraints;
pub use smn_core as core;
pub use smn_datasets as datasets;
pub use smn_matchers as matchers;
pub use smn_schema as schema;

/// Commonly used items, for `use smn::prelude::*`.
pub mod prelude {
    pub use smn_schema::{
        Attribute, AttributeId, Candidate, CandidateId, CandidateSet, Catalog, CatalogBuilder,
        Correspondence, InteractionGraph, Schema, SchemaId,
    };
}
