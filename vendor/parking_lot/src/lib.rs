//! Offline stand-in for `parking_lot`: a [`Mutex`] with the poison-free API
//! over [`std::sync::Mutex`]. Slower than real parking_lot under contention,
//! identical semantics for the workspace's uses (work queues in the bench
//! runner).

use std::sync::{self, MutexGuard};

/// Mutex whose `lock()` returns the guard directly (no `Result`), matching
/// the parking_lot API. A poisoned inner lock (a panic while holding the
/// guard) is propagated as a panic, which parking_lot would also surface —
/// there as the original panic unwinding through the scope.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned: a holder panicked")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned: a holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
