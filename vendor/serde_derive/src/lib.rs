//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes the `smn`
//! workspace derives on:
//!
//! * non-generic structs with named fields,
//! * non-generic tuple structs (newtypes serialize transparently, wider
//!   tuples as arrays),
//! * non-generic enums whose variants are all unit variants.
//!
//! Anything else (generics, data-carrying enum variants, unions) panics at
//! expansion time with a clear message, which is the desired behavior for a
//! stand-in: fail loudly at compile time rather than silently mis-serialize.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

#[derive(Debug)]
struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [group]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Splits a token slice at top-level commas, tracking `<...>` depth so
/// commas inside generic arguments (`HashMap<K, V>`) don't split.
fn top_level_segments(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Parses named-struct fields, returning field names in declaration order.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    top_level_segments(body)
        .iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(seg, 0);
            ident_at(seg, i).unwrap_or_else(|| panic!("expected field name in {seg:?}"))
        })
        .collect()
}

/// Parses enum variants; panics on data-carrying variants.
fn parse_unit_variants(body: &[TokenTree]) -> Vec<String> {
    top_level_segments(body)
        .iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(seg, 0);
            let name =
                ident_at(seg, i).unwrap_or_else(|| panic!("expected variant name in {seg:?}"));
            if seg.len() > i + 1 {
                panic!(
                    "vendored serde_derive only supports unit enum variants; \
                     `{name}` carries data or a discriminant"
                );
            }
            name
        })
        .collect()
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = ident_at(&tokens, i)
        .unwrap_or_else(|| panic!("expected `struct` or `enum`, got {:?}", tokens.get(i)));
    if kind != "struct" && kind != "enum" {
        panic!("vendored serde_derive cannot derive for `{kind}` items");
    }
    i += 1;
    let name = ident_at(&tokens, i).expect("expected type name");
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("expected body of `{name}`, got {other:?}"),
    };
    let body: Vec<TokenTree> = group.stream().into_iter().collect();
    let shape = match (kind.as_str(), group.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(&body)),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(top_level_segments(&body).len()),
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(&body)),
        (k, d) => panic!("unsupported {k} body delimiter {d:?} for `{name}`"),
    };
    Parsed { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: String =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i}),")).collect();
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_get(v, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {entries} }})")
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::Error::custom(\"missing tuple element {i}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "match v {{ \
                     ::serde::Value::Array(items) => \
                         ::std::result::Result::Ok({name}({elems})), \
                     other => ::std::result::Result::Err(::serde::Error::custom( \
                         ::std::format!(\"expected array for {name}, got {{other:?}}\"))), \
                 }}"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v {{ \
                     ::serde::Value::String(s) => match s.as_str() {{ \
                         {arms} \
                         other => ::std::result::Result::Err(::serde::Error::custom( \
                             ::std::format!(\"unknown {name} variant {{other:?}}\"))), \
                     }}, \
                     other => ::std::result::Result::Err(::serde::Error::custom( \
                         ::std::format!(\"expected string for {name}, got {{other:?}}\"))), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
