//! Offline stand-in for `serde`, covering the subset the `smn` workspace
//! uses: `#[derive(Serialize, Deserialize)]` on non-generic structs and
//! unit-variant enums, plus impls for the std types appearing in their
//! fields.
//!
//! Unlike real serde there is no serializer/deserializer abstraction: both
//! traits go through an owned JSON-like [`Value`] tree, which
//! `serde_json` (also vendored) renders. Two deliberate deviations:
//!
//! * maps serialize as arrays of `[key, value]` pairs, so non-string keys
//!   (e.g. `HashMap<Correspondence, CandidateId>`) round-trip losslessly,
//! * non-finite floats serialize as `null`, as real `serde_json` does.

// Lets the `::serde::…` paths emitted by the derive macros resolve inside
// this crate's own tests.
extern crate self as serde;

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Fetches `key` from an object, with a descriptive error (used by derived
/// `Deserialize` impls).
pub fn obj_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Object(_) => v.get(key).ok_or_else(|| Error(format!("missing field `{key}`"))),
        other => Err(Error(format!("expected object with field `{key}`, got {other:?}"))),
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $as:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::$variant(*self as $as) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                // Range-checked: out-of-range values fail loudly instead of
                // wrapping (e.g. deserializing 300 into a u8 is an error).
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64
);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items).map_err(|_| Error(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($idx),+].len() => {
                        let mut it = items.iter();
                        Ok(($($t::from_value(it.next().expect("length checked"))?,)+))
                    }
                    other => Err(Error(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        a: u32,
        b: String,
        nested: Vec<(u64, f64)>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn named_struct_roundtrip() {
        let x = Named { a: 7, b: "hi".into(), nested: vec![(1, 0.5)] };
        let v = x.to_value();
        assert_eq!(v.get("a"), Some(&Value::UInt(7)));
        assert_eq!(Named::from_value(&v).unwrap(), x);
    }

    #[test]
    fn newtype_serializes_transparently() {
        assert_eq!(Newtype(3).to_value(), Value::UInt(3));
        assert_eq!(Newtype::from_value(&Value::UInt(3)).unwrap(), Newtype(3));
    }

    #[test]
    fn unit_enum_roundtrip() {
        assert_eq!(Kind::Beta.to_value(), Value::String("Beta".into()));
        assert_eq!(Kind::from_value(&Value::String("Alpha".into())).unwrap(), Kind::Alpha);
        assert!(Kind::from_value(&Value::String("Gamma".into())).is_err());
    }

    #[test]
    fn hashmap_with_struct_keys_roundtrips() {
        let mut m: HashMap<(u32, u32), String> = HashMap::new();
        m.insert((1, 2), "x".into());
        let back: HashMap<(u32, u32), String> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert!(Named::from_value(&v).is_err());
    }
}
