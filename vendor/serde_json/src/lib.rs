//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text. Only the entry points the workspace uses are provided
//! (`to_string_pretty`, `to_string`).

use serde::{Serialize, Value};
use std::fmt;

/// JSON serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no NaN/Inf; serde_json emits null.
        return "null".to_string();
    }
    let s = format!("{x}");
    // Keep floats visibly floats, as serde_json does ("1.0", not "1").
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_value(v: &Value, indent: Option<usize>, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => out.push_str(&float_repr(*x)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => write_seq(items.iter(), ('[', ']'), indent, out, |item, ind, o| {
            write_value(item, ind, o)
        }),
        Value::Object(entries) => {
            write_seq(entries.iter(), ('{', '}'), indent, out, |(k, item), ind, o| {
                escape_into(k, o);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(item, ind, o);
            })
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    (open, close): (char, char),
    indent: Option<usize>,
    out: &mut String,
    mut write_item: impl FnMut(T, Option<usize>, &mut String),
) {
    out.push(open);
    let len = items.len();
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(item, inner, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
    }
    out.push(close);
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(0), &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::UInt(1), Value::Bool(false)])),
            ("b".into(), Value::String("x\"y".into())),
            ("c".into(), Value::Float(1.0)),
        ]);
        let mut out = String::new();
        write_value(&v, None, &mut out);
        assert_eq!(out, r#"{"a":[1,false],"b":"x\"y","c":1.0}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::UInt(1)]))]);
        let mut out = String::new();
        write_value(&v, Some(0), &mut out);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float_repr(f64::NAN), "null");
        assert_eq!(float_repr(f64::INFINITY), "null");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        let mut out = String::new();
        write_value(&Value::Array(vec![]), Some(0), &mut out);
        assert_eq!(out, "[]");
    }
}
