//! Offline stand-in for `criterion`, implementing the harness subset the
//! `smn-bench` benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! and `Bencher::iter`.
//!
//! Statistics are intentionally simple — median and min over a fixed-count
//! batch after a warm-up — rather than criterion's bootstrap analysis; the
//! goal is honest relative timings with zero dependencies. A `--quick-bench`
//! style environment variable (`SMN_BENCH_FAST=1`) drops iteration counts
//! for CI smoke runs.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }

    /// Id carrying only a parameter (the common form in this workspace).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    /// Times `routine`, recording `sample_count` samples of
    /// `iters_per_sample` iterations each (after one warm-up sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters_per_sample {
            std_black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no measurement)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        println!("{name:<50} median {median:>12.3?}   min {min:>12.3?}");
    }
}

fn fast_mode() -> bool {
    std::env::var("SMN_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// Top-level harness state.
pub struct Criterion {
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_count: if fast_mode() { 2 } else { 10 } }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name, sample_count: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_count, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_count: u32, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: if fast_mode() { 1 } else { 3 },
        sample_count,
    };
    f(&mut b);
    b.report(name);
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<u32>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // criterion requires >= 10; we accept anything >= 1.
        self.sample_count = Some((n as u32).clamp(1, 1000));
        self
    }

    fn effective_samples(&self) -> u32 {
        // An explicit sample_size() override is honored as-is; only the
        // harness default is capped. Fast mode caps everything for CI smoke.
        let base = self.sample_count.unwrap_or(self.criterion.sample_count.min(10));
        if fast_mode() {
            base.min(2)
        } else {
            base
        }
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.effective_samples(), f);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.effective_samples(), |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { sample_count: 2 };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion { sample_count: 1 };
        let mut group = c.benchmark_group("g");
        let mut seen = None;
        group.sample_size(1).bench_with_input(BenchmarkId::from_parameter("p"), &41, |b, &x| {
            b.iter(|| x + 1);
            seen = Some(x + 1);
        });
        group.finish();
        assert_eq!(seen, Some(42));
    }

    #[test]
    fn ids_render_like_paths() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("C120").to_string(), "C120");
    }
}
