//! Offline stand-in for `proptest`, implementing the subset the `smn` test
//! suites use: the [`proptest!`] macro, range/`any`/array/collection/regex
//! strategies, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberate for an offline stand-in:
//!
//! * **no shrinking** — a failing case reports its inputs (via the assert
//!   message formatting the test already does) but is not minimized;
//! * **derived determinism** — each test's RNG is seeded from the hash of
//!   its function name, so runs are reproducible without a persistence file;
//! * **default cases = 64** (real proptest: 256) to keep `cargo test -q`
//!   fast; tests that need a specific count set it via `proptest_config`,
//!   and the `PROPTEST_CASES` environment variable overrides the default
//!   (as in real proptest) so CI can run the property suites deeper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (real proptest: 256) to keep `cargo test -q` quick, or the
    /// `PROPTEST_CASES` environment variable when set — the same override
    /// real proptest honors, used by CI to run the property suites deeper
    /// than local iteration does.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject(String),
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// Result type the expanded test body returns per case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a stable hash of the test name: deterministic across runs
    /// and independent of execution order.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl Rng for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (real proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sampled value (real
    /// proptest's `prop_flat_map`), e.g. a length draw feeding a
    /// length-parameterized collection.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed same-typed strategies — the unweighted
/// [`prop_oneof!`] backing store.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Uniform choice among strategies producing the same value type (the
/// unweighted form of real proptest's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($option)),+];
        $crate::Union::new(options)
    }};
}

macro_rules! impl_strategy_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuples! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

macro_rules! impl_strategy_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_ranges!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// Strategy for a type's whole domain, as in `any::<u64>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random()
    }
}

/// `prop::…` strategy namespaces.
pub mod prop {
    pub mod array {
        use crate::{Strategy, TestRng};

        pub struct Uniform3<S>(S);

        /// Three independent draws from `strategy`.
        pub fn uniform3<S: Strategy>(strategy: S) -> Uniform3<S> {
            Uniform3(strategy)
        }

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
            }
        }
    }

    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// A vector whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// String strategies.
pub mod string {
    use crate::{Strategy, TestRng};
    use rand::Rng;

    /// Error for unsupported regex syntax.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    enum Atom {
        Class(Vec<char>),
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Generator for the regex subset `(literal | [class]){m,n}?`*, which
    /// covers the attribute-name patterns the test suites use.
    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<Vec<char>, Error> {
        // Fail loudly on negated classes rather than treating '^' literally.
        if chars.peek() == Some(&'^') {
            return Err(Error("negated class [^...] not supported".into()));
        }
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated class".into()))?;
            match c {
                ']' => return Ok(out),
                '-' => {
                    // Range if between two chars, literal at the edges.
                    match (prev, chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            if hi < lo {
                                return Err(Error(format!("bad range {lo}-{hi}")));
                            }
                            out.extend(((lo as u32 + 1)..=(hi as u32)).filter_map(char::from_u32));
                            prev = None;
                        }
                        _ => {
                            out.push('-');
                            prev = Some('-');
                        }
                    }
                }
                c => {
                    out.push(c);
                    prev = Some(c);
                }
            }
        }
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars>,
    ) -> Result<(usize, usize), Error> {
        if chars.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        chars.next();
        let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
        let parse = |s: &str| s.parse::<usize>().map_err(|_| Error(format!("bad count {s:?}")));
        match body.split_once(',') {
            Some((lo, hi)) => Ok((parse(lo)?, parse(hi)?)),
            None => {
                let n = parse(&body)?;
                Ok((n, n))
            }
        }
    }

    /// Parses `pattern` into a [`RegexStrategy`]. Supports literals, one
    /// `[...]` character class per atom (with ranges), and `{m,n}`/`{n}`
    /// quantifiers — the subset the workspace's tests use.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)?),
                '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(format!("metacharacter {c:?} not supported")))
                }
                '\\' => Atom::Literal(chars.next().ok_or_else(|| Error("trailing \\".into()))?),
                c => Atom::Literal(c),
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexStrategy { pieces })
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let n = rng.random_range(piece.min..=piece.max);
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(chars) => {
                            out.push(chars[rng.random_range(0..chars.len())]);
                        }
                    }
                }
            }
            out
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Defines property tests. Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///     /// docs / attributes
///     #[test]
///     fn prop(x in 0u64..10, v in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::prelude::*;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                // Build each strategy once (shadowed by the sampled value
                // inside the loop), matching real proptest semantics.
                $(let $arg = ($strategy);)+
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20),
                        "test {} rejected too many cases ({} attempts for {} cases)",
                        stringify!($name), attempts, ran,
                    );
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts within a property; failure fails the whole test (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a property, with an optional context message
/// (same surface as real proptest's `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 5u64..10, y in 0.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn arrays_and_vecs(a in prop::array::uniform3(1usize..4), v in prop::collection::vec(0u32..7, 0..5)) {
            prop_assert!(a.iter().all(|&x| (1..4).contains(&x)));
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_honored(_x in 0u32..10) {
            // runs exactly 3 times; nothing to assert beyond termination
        }
    }

    #[test]
    fn string_regex_subset() {
        let strat = crate::string::string_regex("[A-Za-z0-9_ -]{0,24}").expect("valid regex");
        let mut rng = crate::TestRng::from_name("string_regex_subset");
        for _ in 0..200 {
            let s = crate::Strategy::sample(&strat, &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ' ' || c == '-'));
        }
        assert!(crate::string::string_regex("a|b").is_err());
    }

    #[test]
    fn literal_and_exact_count() {
        let strat = crate::string::string_regex("ab[0-1]{2}").expect("valid");
        let mut rng = crate::TestRng::from_name("literal_and_exact_count");
        let s = crate::Strategy::sample(&strat, &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with("ab"));
    }
}
