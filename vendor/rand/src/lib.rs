//! Offline stand-in for the `rand` crate, implementing exactly the 0.9 API
//! subset the `smn` workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships this minimal, dependency-free implementation instead
//! (see the repository README, "Vendored dependencies"). The generator is
//! xoshiro256** seeded through SplitMix64 — a high-quality, deterministic
//! PRNG; it is *not* the ChaCha12 generator real `rand` uses for `StdRng`,
//! so streams differ from upstream `rand` for the same seed. Everything in
//! the workspace only relies on determinism per seed, never on the exact
//! stream. One further deviation: float `RangeInclusive` sampling computes
//! `lo + (hi - lo) * unit` with `unit ∈ [0, 1)`, so the upper endpoint
//! itself is never returned (real rand 0.9 can yield it).
//!
//! Supported surface:
//!
//! * [`Rng`]: `random::<f64>()`, `random_bool`, `random_range` over integer
//!   and float `Range`/`RangeInclusive`,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`seq::IndexedRandom::choose`] and [`seq::SliceRandom::shuffle`].

pub mod rngs;
pub mod seq;

/// Types that can be drawn uniformly from their whole domain via
/// [`Rng::random`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` for `0 < span <= 2^64`, by rejection
/// sampling: draws whose residue class is over-represented in the 64-bit
/// word are discarded, so no modulo bias even for spans near `2^64`.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    const TWO64: u128 = 1 << 64;
    debug_assert!(span > 0 && span <= TWO64);
    let zone = TWO64 - (TWO64 % span);
    loop {
        let v = rng.next_u64() as u128;
        if v < zone {
            return v % span;
        }
    }
}

// Spans are computed in i128 so the widest supported ranges (e.g.
// `i64::MIN..i64::MAX`) neither overflow the subtraction nor wrap the
// offset addition.
macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing random-number trait (API subset of `rand::Rng` 0.9).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `T`'s whole domain (floats: `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.random::<f64>() < p
    }

    /// Samples uniformly from a range.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_only_inclusively() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.random_range(3u64..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn extreme_signed_and_unsigned_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let v = rng.random_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
            let w = rng.random_range(i32::MIN..=i32::MAX);
            let _: i32 = w;
            let u = rng.random_range(0u64..=u64::MAX);
            let _: u64 = u;
        }
    }

    #[test]
    fn rejection_sampling_is_unbiased_on_large_spans() {
        // Span just over half of 2^64: with plain modulo, the lower half of
        // the range would be hit ~2x as often; with rejection sampling both
        // halves are equally likely.
        let span = (1u128 << 63) + (1 << 62);
        let mut rng = StdRng::seed_from_u64(11);
        let (mut low, n) = (0u32, 4000);
        for _ in 0..n {
            if super::uniform_below(&mut rng, span) < span / 2 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "low-half fraction {frac} should be ~0.5");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
