//! Sequence-related helpers (`choose`, `shuffle`).

use crate::Rng;

/// Uniform selection from indexable sequences.
pub trait IndexedRandom {
    type Output: ?Sized;

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    #[inline]
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// In-place random permutation.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
