//! End-to-end integration tests spanning all crates: dataset generation →
//! matching → probabilistic network → reconciliation → instantiation.

use smn::core::{
    GroundTruthOracle, InstantiationConfig, MatchingNetwork, PrecisionRecall, ReconciliationGoal,
    SamplerConfig, Session, SessionConfig,
};
use smn::matchers::{ensemble, matcher::match_network, MatchQuality, PerturbationMatcher};
use smn_constraints::ConstraintConfig;
use smn_core::engine::Strategy;
use smn_testkit::{business_dataset as small_dataset, fast_sampler};

fn fast_session_config() -> SessionConfig {
    SessionConfig { sampler: fast_sampler(1), ..Default::default() }
}

/// The full pipeline with a real string matcher: reconciliation improves
/// the instantiated matching, and full reconciliation is certain.
#[test]
fn pipeline_with_real_matcher() {
    let dataset = small_dataset(3);
    let graph = dataset.complete_graph();
    let truth = dataset.selective_matching(&graph);
    let candidates = match_network(&ensemble::coma_like(), &dataset.catalog, &graph).unwrap();
    assert!(!candidates.is_empty(), "matcher should find candidates");

    let network = MatchingNetwork::new(
        dataset.catalog.clone(),
        graph,
        candidates,
        ConstraintConfig::default(),
    );
    let mut session = Session::new(network, fast_session_config());
    let mut oracle = GroundTruthOracle::new(truth.iter().copied());

    let before = session.instantiate_default();
    let q_before = PrecisionRecall::of_instance(
        session.network().network(),
        &before.instance,
        truth.iter().copied(),
    );

    session.run(&mut oracle, ReconciliationGoal::Complete);
    assert_eq!(session.entropy(), 0.0, "complete reconciliation must be certain");

    let after = session.instantiate_default();
    let q_after = PrecisionRecall::of_instance(
        session.network().network(),
        &after.instance,
        truth.iter().copied(),
    );
    assert!(
        q_after.precision >= q_before.precision - 1e-9,
        "precision {} → {}",
        q_before.precision,
        q_after.precision
    );
    // Precision need not reach 1.0 even at zero uncertainty: conflict-free
    // FALSE candidates are forced into every maximal instance (Definition 1)
    // and are thus certain from the start — Algorithm 1 never asks about
    // them. The paper notes exactly this (§VI-C: "when network uncertainty
    // is zero … the precision is not necessarily guaranteed to be 1.0").
    // What must hold: every remaining member is certain, and every asserted
    // member was approved.
    for c in after.instance.iter() {
        assert_eq!(session.network().probability(c), 1.0);
    }
}

/// Reconciliation with a calibrated perturbation matcher: the instantiated
/// matching converges to the candidate-set ceiling (recall is bounded by
/// what the matcher proposed).
#[test]
fn full_reconciliation_reaches_candidate_ceiling() {
    let dataset = small_dataset(11);
    let graph = dataset.complete_graph();
    let truth = dataset.selective_matching(&graph);
    let matcher = PerturbationMatcher::new(truth.iter().copied(), 0.7, 0.9, 5);
    let candidates = match_network(&matcher, &dataset.catalog, &graph).unwrap();
    let ceiling = MatchQuality::of(&candidates, truth.iter().copied());

    let network = MatchingNetwork::new(
        dataset.catalog.clone(),
        graph,
        candidates,
        ConstraintConfig::default(),
    );
    let mut session = Session::new(network, fast_session_config());
    let mut oracle = GroundTruthOracle::new(truth.iter().copied());
    session.run(&mut oracle, ReconciliationGoal::Complete);

    let inst = session.instantiate(InstantiationConfig::default());
    let q = PrecisionRecall::of_instance(
        session.network().network(),
        &inst.instance,
        truth.iter().copied(),
    );
    // Recall reaches the matcher ceiling: true candidates never conflict
    // with approved truth (the generated ground truth is consistent), so
    // each stays uncertain until approved and ends up in the instance.
    assert!(
        (q.recall - ceiling.recall).abs() < 1e-9,
        "recall {} should equal the matcher ceiling {}",
        q.recall,
        ceiling.recall
    );
    // Precision cannot be asserted to be 1.0 (conflict-free false
    // candidates are maximality-forced; see pipeline_with_real_matcher),
    // but it must be at least the candidate-set precision.
    assert!(
        q.precision >= ceiling.precision - 1e-9,
        "precision {} below candidate precision {}",
        q.precision,
        ceiling.precision
    );
}

/// The ground truth of every generated dataset is consistent under both
/// constraints — a prerequisite for the always-correct oracle assumption.
#[test]
fn dataset_ground_truth_is_constraint_consistent() {
    use smn_constraints::{BitSet, ConflictIndex};
    use smn_schema::CandidateSet;
    for seed in [1, 7, 23] {
        let dataset = small_dataset(seed);
        let graph = dataset.complete_graph();
        let truth = dataset.selective_matching(&graph);
        let mut cs = CandidateSet::new(&dataset.catalog);
        for t in &truth {
            cs.add(&dataset.catalog, Some(&graph), t.a(), t.b(), 1.0).unwrap();
        }
        let idx = ConflictIndex::build(&dataset.catalog, &graph, &cs, ConstraintConfig::default());
        assert!(
            idx.is_consistent(&BitSet::full(cs.len())),
            "ground truth violates constraints (seed {seed})"
        );
    }
}

/// Information gain ordering reduces uncertainty faster than random
/// ordering for a fixed budget, averaged over several runs.
///
/// Two caveats make the claim statistical rather than per-instance: the
/// gain estimate needs a reasonably sized sample store (Eq. 4's split
/// entropies are noise otherwise), and on degenerate tiny networks with a
/// budget of a handful of assertions the one-step greedy can lose to a
/// lucky random order. The configuration below — ~200 candidates, 20%
/// budget, 800-sample store — mirrors the scale of the paper's BP setting.
#[test]
fn information_gain_beats_random_on_average() {
    let mut b = smn::prelude::CatalogBuilder::new();
    for s in 0..3 {
        b.add_schema_with_attributes(format!("s{s}"), (0..12).map(|i| format!("a{s}_{i}")))
            .unwrap();
    }
    let catalog = b.build();
    let graph = smn::prelude::InteractionGraph::complete(3);
    let mut truth = Vec::new();
    for s1 in 0..3usize {
        for s2 in (s1 + 1)..3 {
            for i in 0..12 {
                truth.push(smn::prelude::Correspondence::new(
                    smn::prelude::AttributeId::from_index(s1 * 12 + i),
                    smn::prelude::AttributeId::from_index(s2 * 12 + i),
                ));
            }
        }
    }

    let run = |strategy: Strategy, seed: u64| -> f64 {
        let matcher = PerturbationMatcher::new(truth.iter().copied(), 0.6, 0.9, seed);
        let candidates = match_network(&matcher, &catalog, &graph).unwrap();
        let budget = candidates.len() / 5;
        let network = MatchingNetwork::new(
            catalog.clone(),
            graph.clone(),
            candidates,
            ConstraintConfig::default(),
        );
        let mut session = Session::new(
            network,
            SessionConfig {
                sampler: SamplerConfig {
                    anneal: true,
                    n_samples: 800,
                    walk_steps: 4,
                    n_min: 300,
                    seed,
                    chains: 1,
                },
                strategy,
                strategy_seed: seed,
                ..Default::default()
            },
        );
        let mut oracle = GroundTruthOracle::new(truth.iter().copied());
        session.run(&mut oracle, ReconciliationGoal::Budget(budget));
        session.network().normalized_entropy()
    };

    let runs = 6;
    let ig: f64 = (0..runs).map(|s| run(Strategy::InformationGain, s)).sum::<f64>() / runs as f64;
    let random: f64 = (0..runs).map(|s| run(Strategy::Random, s)).sum::<f64>() / runs as f64;
    assert!(
        ig < random,
        "information gain ({ig:.3}) should reduce uncertainty faster than random ({random:.3})"
    );
}

/// The facade crate re-exports a coherent prelude.
#[test]
fn facade_prelude_compiles_and_works() {
    use smn::prelude::*;
    let mut b = CatalogBuilder::new();
    let s1 = b.add_schema("a").unwrap();
    b.add_attribute(s1, "x").unwrap();
    let s2 = b.add_schema("b").unwrap();
    b.add_attribute(s2, "y").unwrap();
    let catalog = b.build();
    let graph = InteractionGraph::complete(2);
    let mut c = CandidateSet::new(&catalog);
    c.add(&catalog, Some(&graph), AttributeId(0), AttributeId(1), 0.5).unwrap();
    assert_eq!(c.len(), 1);
    let corr = Correspondence::new(AttributeId(0), AttributeId(1));
    assert_eq!(c.find(AttributeId(1), AttributeId(0)), Some(CandidateId(0)));
    assert_eq!(c.corr(CandidateId(0)), corr);
    let _schema: &Schema = catalog.schema(s1);
    let _attr: &Attribute = catalog.attribute(AttributeId(0));
}
