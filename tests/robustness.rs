//! Robustness and edge-case integration tests: degenerate networks, noisy
//! experts, crowd reconciliation, and cross-validation of instantiated
//! matchings against the strict closure checker.

use smn::core::{
    CrowdOracle, GroundTruthOracle, InstantiationConfig, MatchingNetwork, NoisyOracle,
    PrecisionRecall, ReconciliationGoal, Session,
};
use smn::prelude::*;
use smn_constraints::{ClosureChecker, ConstraintConfig};
use smn_testkit::{fast_session_config as fast_config, identity_network};

/// An empty candidate set is a legal (if useless) network: entropy zero,
/// instantiation empty, no questions.
#[test]
fn empty_candidate_set_is_handled() {
    let mut b = CatalogBuilder::new();
    b.add_schema_with_attributes("A", ["x"]).unwrap();
    b.add_schema_with_attributes("B", ["y"]).unwrap();
    let catalog = b.build();
    let candidates = CandidateSet::new(&catalog);
    let network = MatchingNetwork::new(
        catalog,
        InteractionGraph::complete(2),
        candidates,
        ConstraintConfig::default(),
    );
    let mut session = Session::new(network, fast_config(1));
    assert_eq!(session.entropy(), 0.0);
    assert!(session.next_question().is_none());
    let inst = session.instantiate_default();
    assert_eq!(inst.instance.count(), 0);
    assert_eq!(inst.repair_distance, 0);
}

/// A single-candidate network: the candidate is maximality-forced into the
/// only instance, so it is certain immediately.
#[test]
fn single_candidate_network() {
    let mut b = CatalogBuilder::new();
    b.add_schema_with_attributes("A", ["x"]).unwrap();
    b.add_schema_with_attributes("B", ["y"]).unwrap();
    let catalog = b.build();
    let graph = InteractionGraph::complete(2);
    let mut candidates = CandidateSet::new(&catalog);
    candidates.add(&catalog, Some(&graph), AttributeId(0), AttributeId(1), 0.9).unwrap();
    let network = MatchingNetwork::new(catalog, graph, candidates, ConstraintConfig::default());
    let session = Session::new(network, fast_config(2));
    assert_eq!(session.entropy(), 0.0, "a conflict-free candidate is certain");
    assert_eq!(session.network().probability(CandidateId(0)), 1.0);
    let inst = session.instantiate_default();
    assert!(inst.instance.contains(CandidateId(0)));
}

/// Instantiated matchings always pass the *strict* union-find closure
/// check, not just the triangle-based one they were built under — on
/// complete 3-schema graphs the two coincide, and the instantiation search
/// must never emit anything the stricter semantics rejects.
#[test]
fn instantiation_passes_strict_closure_validation() {
    for seed in [3u64, 17, 42] {
        let (network, _) = identity_network(3, 8, 0.6, seed);
        let session = Session::new(network, fast_config(seed));
        let inst = session.instantiate(InstantiationConfig { seed, ..Default::default() });
        let checker = ClosureChecker::new(
            session.network().network().catalog(),
            session.network().network().candidates(),
        );
        assert!(
            checker.is_consistent(&inst.instance),
            "instantiation violates closure semantics (seed {seed})"
        );
    }
}

/// Reconciliation driven by a noisy oracle stays well-defined: the session
/// never panics, entropy still reaches zero under Complete, and quality
/// degrades relative to the exact oracle rather than collapsing.
#[test]
fn noisy_oracle_degrades_gracefully() {
    let (network, truth) = identity_network(3, 8, 0.65, 5);
    let run = |noise: f64| -> f64 {
        let mut session = Session::new(network.clone(), fast_config(5));
        let mut oracle = NoisyOracle::new(truth.iter().copied(), noise, 9);
        session.run(&mut oracle, ReconciliationGoal::Complete);
        let inst = session.instantiate(InstantiationConfig::default());
        PrecisionRecall::of_instance(
            session.network().network(),
            &inst.instance,
            truth.iter().copied(),
        )
        .f1()
    };
    let clean = run(0.0);
    let noisy = run(0.3);
    assert!(clean >= noisy, "noise must not improve quality: {clean} vs {noisy}");
    assert!(noisy > 0.2, "even a 30%-error expert leaves usable structure: {noisy}");
}

/// Crowd reconciliation at high individual error matches (or beats) a
/// single expert at the same error rate.
#[test]
fn crowd_beats_single_noisy_expert() {
    let (network, truth) = identity_network(3, 8, 0.65, 6);
    let f1_single: f64 = {
        let mut session = Session::new(network.clone(), fast_config(6));
        let mut oracle = NoisyOracle::new(truth.iter().copied(), 0.25, 3);
        session.run(&mut oracle, ReconciliationGoal::Complete);
        let inst = session.instantiate(InstantiationConfig::default());
        PrecisionRecall::of_instance(
            session.network().network(),
            &inst.instance,
            truth.iter().copied(),
        )
        .f1()
    };
    let f1_crowd: f64 = {
        let mut session = Session::new(network.clone(), fast_config(6));
        let mut oracle = CrowdOracle::new(truth.iter().copied(), 5, 0.25, 3);
        session.run(&mut oracle, ReconciliationGoal::Complete);
        let inst = session.instantiate(InstantiationConfig::default());
        PrecisionRecall::of_instance(
            session.network().network(),
            &inst.instance,
            truth.iter().copied(),
        )
        .f1()
    };
    assert!(
        f1_crowd >= f1_single,
        "5-worker majority ({f1_crowd:.3}) should not lose to one worker ({f1_single:.3})"
    );
}

/// Determinism end to end: identical seeds give identical sessions,
/// traces and instantiations.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let (network, truth) = identity_network(3, 6, 0.6, 11);
        let mut session = Session::new(network, fast_config(11));
        let mut oracle = GroundTruthOracle::new(truth.iter().copied());
        let trace = session.run(&mut oracle, ReconciliationGoal::Budget(10));
        let inst = session.instantiate(InstantiationConfig { seed: 11, ..Default::default() });
        (
            trace.iter().map(|t| (t.candidate, t.approved)).collect::<Vec<_>>(),
            inst.instance.to_vec(),
        )
    };
    assert_eq!(run(), run());
}

/// The effort accounting matches the trace: after a budget-k run the
/// session reports exactly k assertions of |C|.
#[test]
fn effort_accounting_is_exact() {
    let (network, truth) = identity_network(3, 8, 0.6, 13);
    let n = network.candidate_count();
    let mut session = Session::new(network, fast_config(13));
    let mut oracle = GroundTruthOracle::new(truth.iter().copied());
    let trace = session.run(&mut oracle, ReconciliationGoal::Budget(7));
    assert_eq!(trace.len(), 7);
    assert!((session.effort() - 7.0 / n as f64).abs() < 1e-12);
    assert_eq!(session.history().len(), 7);
}
