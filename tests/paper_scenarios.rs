//! Integration tests pinning the paper's concrete claims and scenarios.

use smn::core::exact::{enumerate_instances, exact_probabilities};
use smn::core::{
    entropy_of, kl_ratio, GroundTruthOracle, MatchingNetwork, ProbabilisticNetwork,
    ReconciliationGoal, SamplerConfig, Session, SessionConfig,
};
use smn::prelude::*;
use smn_constraints::ConstraintConfig;
use smn_core::feedback::Feedback;
use smn_core::Assertion;
use smn_testkit::fig1_network as fig1;

/// §II-A: "The set of correspondences {c3, c5} violates the one-to-one
/// constraint, whereas the set {c2, c1, c5} violates the cycle constraint."
/// (Our ids: the 1-1 pair shares productionDate; the cycle triple is an
/// open 3-path.)
#[test]
fn motivating_example_violations() {
    let net = fig1();
    use smn_constraints::BitSet;
    // c2 (pd–releaseDate) and c4 (pd–screenDate) share productionDate
    let one_to_one = BitSet::from_ids(5, [CandidateId(2), CandidateId(4)]);
    assert!(!net.index().is_consistent(&one_to_one));
    // c0 (pd–date), c1 (date–releaseDate), c4 (pd–screenDate): open cycle
    let cycle = BitSet::from_ids(5, [CandidateId(0), CandidateId(1), CandidateId(4)]);
    assert!(!net.index().is_consistent(&cycle));
    // each pair within the cycle triple is fine — it is a genuine 3-way
    // violation
    for (x, y) in [(0, 1), (0, 4), (1, 4)] {
        let pair = BitSet::from_ids(5, [CandidateId(x), CandidateId(y)]);
        assert!(net.index().is_consistent(&pair));
    }
}

/// Example 1's headline: asserting the universally shared correspondence
/// leaves relative uncertainty intact, asserting a discriminator halves
/// the instance space. (Exact probabilities; see DESIGN.md on the two
/// extra mixed instances Definition 1 admits.)
#[test]
fn example1_ordering_effect_exact() {
    let net = fig1();
    let no_feedback = Feedback::new(5);
    let h0 = entropy_of(&exact_probabilities(&net, &no_feedback, 1000).unwrap());
    assert!((h0 - 5.0).abs() < 1e-9);

    let mut approve_c0 = Feedback::new(5);
    approve_c0.approve(CandidateId(0));
    let h_c0 = entropy_of(&exact_probabilities(&net, &approve_c0, 1000).unwrap());

    let mut approve_c2 = Feedback::new(5);
    approve_c2.approve(CandidateId(2));
    let h_c2 = entropy_of(&exact_probabilities(&net, &approve_c2, 1000).unwrap());

    assert!(h_c2 < h_c0, "discriminator ({h_c2}) must beat shared pair ({h_c0})");
    assert!((h_c0 - 4.0).abs() < 1e-9);
    assert!((h_c2 - 3.0).abs() < 1e-9);
}

/// §III-A: "the probability of asserted correspondences is either one or
/// zero, since every matching instance … includes all approved … and
/// excludes all disapproved".
#[test]
fn asserted_probabilities_are_binary() {
    let net = fig1();
    let mut pn = ProbabilisticNetwork::new(
        net,
        SamplerConfig {
            anneal: true,
            n_samples: 300,
            walk_steps: 3,
            n_min: 100,
            seed: 2,
            chains: 1,
        },
    );
    pn.assert_candidate(Assertion { candidate: CandidateId(1), approved: true }).unwrap();
    pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: false }).unwrap();
    assert_eq!(pn.probability(CandidateId(1)), 1.0);
    assert_eq!(pn.probability(CandidateId(4)), 0.0);
    for inst in pn.samples() {
        assert!(inst.contains(CandidateId(1)));
        assert!(!inst.contains(CandidateId(4)));
    }
}

/// §III-B sampling effectiveness: on a small network where enumeration is
/// feasible, the sampled distribution is far closer to the exact one than
/// the maximum-entropy baseline (the paper reports KL ratios below 2%).
#[test]
fn sampler_beats_uniform_baseline() {
    // a network small enough to enumerate but large enough to be non-trivial
    let mut b = CatalogBuilder::new();
    for s in 0..3 {
        b.add_schema_with_attributes(format!("s{s}"), (0..4).map(|i| format!("a{s}_{i}"))).unwrap();
    }
    let catalog = b.build();
    let graph = InteractionGraph::complete(3);
    let mut cs = CandidateSet::new(&catalog);
    // identity pairs + systematic confusions
    for s1 in 0..3u32 {
        for s2 in (s1 + 1)..3 {
            for i in 0..4u32 {
                let a = AttributeId(s1 * 4 + i);
                let b2 = AttributeId(s2 * 4 + i);
                cs.add(&catalog, Some(&graph), a, b2, 0.8).unwrap();
                if i + 1 < 4 {
                    cs.add(&catalog, Some(&graph), a, AttributeId(s2 * 4 + i + 1), 0.5).unwrap();
                }
            }
        }
    }
    let net = MatchingNetwork::new(catalog, graph, cs, ConstraintConfig::default());
    let exact = exact_probabilities(&net, &Feedback::new(net.candidate_count()), 5_000_000)
        .expect("enumerable");
    let pn = ProbabilisticNetwork::new(
        net,
        SamplerConfig {
            anneal: true,
            n_samples: 4000,
            walk_steps: 4,
            n_min: 1500,
            seed: 9,
            chains: 1,
        },
    );
    let ratio = kl_ratio(&exact, pn.probabilities());
    assert!(
        ratio < 0.25,
        "sampled distribution should be much closer to exact than uniform: ratio {ratio}"
    );
}

/// §IV: full reconciliation of the motivating network converges to its
/// selective matching regardless of the strategy.
#[test]
fn fig1_reconciles_to_selective_matching() {
    let a = AttributeId;
    let truth = [
        Correspondence::new(a(0), a(1)),
        Correspondence::new(a(1), a(3)),
        Correspondence::new(a(0), a(3)),
    ];
    for strategy in
        [smn_core::engine::Strategy::Random, smn_core::engine::Strategy::InformationGain]
    {
        let mut session = Session::new(
            fig1(),
            SessionConfig {
                sampler: SamplerConfig {
                    anneal: true,
                    n_samples: 300,
                    walk_steps: 3,
                    n_min: 100,
                    seed: 3,
                    chains: 1,
                },
                strategy,
                strategy_seed: 17,
                ..Default::default()
            },
        );
        let mut oracle = GroundTruthOracle::new(truth);
        session.run(&mut oracle, ReconciliationGoal::Complete);
        let inst = session.instantiate_default();
        let picked: Vec<u32> = inst.instance.iter().map(|c| c.0).collect();
        assert_eq!(picked, vec![0, 3, 4], "strategy {strategy:?}");
    }
}

/// The number of matching instances shrinks monotonically along any
/// assertion sequence (view maintenance can only filter Ω).
#[test]
fn instance_space_shrinks_monotonically() {
    let net = fig1();
    let count = |fb: &Feedback| enumerate_instances(&net, fb, 1000).unwrap().len();
    let mut fb = Feedback::new(5);
    let mut last = count(&fb);
    assert_eq!(last, 4);
    for (c, approved) in [(CandidateId(0), true), (CandidateId(1), false), (CandidateId(3), true)] {
        if approved {
            fb.approve(c);
        } else {
            fb.disapprove(c);
        }
        let now = count(&fb);
        assert!(now <= last, "instance count grew: {last} → {now}");
        last = now;
    }
    assert_eq!(last, 1, "the selective matching remains");
}
